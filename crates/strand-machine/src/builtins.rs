//! Body builtins of the abstract machine.
//!
//! The paper's programs use a small set of low-level primitives; each is
//! implemented here with dataflow semantics (suspend until inputs are
//! available):
//!
//! | builtin | paper role |
//! |---|---|
//! | `X := E` | assignment — arithmetic when `E` is an arithmetic expression, data otherwise (§2.1, Figure 1) |
//! | `X = T` | data assignment (explicit form) |
//! | `length(T, N)` | arity of the server stream tuple `DT` / length of a list (Server transformation step 3) |
//! | `rand_num(N, R)` | random integer in `(1,N)` (§3.3) — deterministic, seeded |
//! | `distribute(I, DT, Msg)` | append `Msg` to the `I`-th server stream (Server transformation step 2) |
//! | `make_tuple(N, T)`, `put_arg(I, T, V)` | construct the stream tuple (Figure 3) |
//! | `put_arg(I, T, V, Won)` | test-and-set slot fill: `Won := yes` iff the slot was empty — makes supervised bootstrap idempotent under duplicate delivery |
//! | `sup_restart` | count one supervisor restart in the run metrics (Supervise motif's timeout rule) |
//! | `open_port(P, S)`, `send_port(P, M)` | create/feed a merged stream — the machine-level realization of Figure 3's `merge` network |
//! | `merge(Streams, Out)` | merge a list of streams into one (§3.2) |
//! | `work(W)` | advance the node's clock by `W` ticks — models user computation cost in experiments |
//! | `print(T)` | append the resolved term to the run's output log |
//! | `current_node(N)` | the executing node's 1-based number |
//! | `true` | no-op |
//! | `after_unless(C, W, T)` | deterministic timer: binds `T := timeout` after `W` ticks unless `C` is bound first (then it evaporates, costing nothing) — the Supervise motif's retry/heartbeat clock |
//! | `ack(V)` | idempotently bind `V := ok` — safe under duplicate delivery |
//! | `unique_id(N)` | bind `N` to a fresh machine-wide integer (sequence numbers) |
//!
//! Internal (not surface syntax): `'$spawn_at'(NodeExpr, Goal)` defers a
//! placement whose node expression is not yet bound, `'$forward'(S, P)`
//! is the per-stream forwarder process of `merge/2`, `'$timer'(C, T)` is a
//! pending `after_unless` deadline, and `'$deliver'(P, M)` is a delayed
//! port message en route (fault injection).

use crate::machine::{Delivery, Machine, PortState};
use crate::trace::{goal_text, TraceEvent};
use strand_core::arith::{is_arith_expr, Evaled};
use strand_core::{eval_arith, StrandError, StrandResult, Term, VarId};

/// Outcome of a builtin execution.
pub(crate) enum BuiltinOutcome {
    Done,
    Suspend(Vec<VarId>),
    Error(StrandError),
}

/// Is `name/arity` a machine builtin? Checked once per reduction, so the
/// arity (an integer compare) discriminates before any string compare runs.
pub(crate) fn is_builtin(name: &str, arity: usize) -> bool {
    match arity {
        0 => matches!(name, "true" | "sup_restart"),
        1 => matches!(
            name,
            "work" | "print" | "current_node" | "ack" | "unique_id"
        ),
        2 => matches!(
            name,
            ":=" | "="
                | "length"
                | "rand_num"
                | "make_tuple"
                | "open_port"
                | "send_port"
                | "merge"
                | "gauge"
                | "$spawn_at"
                | "$forward"
                | "$timer"
                | "$timer!"
                | "$deliver"
        ),
        3 => matches!(name, "distribute" | "put_arg" | "arg" | "after_unless"),
        4 => matches!(name, "distribute" | "put_arg"),
        _ => false,
    }
}

fn bad(builtin: &str, detail: impl Into<String>) -> BuiltinOutcome {
    BuiltinOutcome::Error(StrandError::BadBuiltin {
        builtin: builtin.to_string(),
        detail: detail.into(),
    })
}

impl Machine {
    /// Execute a builtin goal. Returns `Err` only for machine-fatal
    /// conditions; program-level problems go through [`BuiltinOutcome`].
    pub(crate) fn exec_builtin(&mut self, name: &str, goal: &Term) -> StrandResult<BuiltinOutcome> {
        // Borrow the argument slice directly — builtins run once per goal
        // and must not pay a Vec clone on every reduction.
        let args: &[Term] = goal.goal_args();
        Ok(match (name, args) {
            ("true", []) => BuiltinOutcome::Done,

            // Marks one supervisor restart: the Supervise motif calls this
            // in its heartbeat-timeout rule, so chaos and fault runs can
            // report recovery activity through the metrics.
            ("sup_restart", []) => {
                self.metrics.supervisor_restarts += 1;
                BuiltinOutcome::Done
            }

            (":=", [lhs, rhs]) => self.assign(lhs, rhs, true)?,
            ("=", [lhs, rhs]) => self.assign(lhs, rhs, false)?,

            ("length", [t, n]) => match self.term_length(t) {
                LengthOutcome::Len(len) => self.bind_or_err(n, Term::int(len))?,
                LengthOutcome::Suspend(vs) => BuiltinOutcome::Suspend(vs),
                LengthOutcome::Bad => bad("length/2", "argument is neither tuple nor list"),
            },

            ("rand_num", [n, r]) => match self.store.deref(n) {
                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                Term::Int(n) if n > 0 => {
                    let val = self.rng.rand_num(n as u64) as i64;
                    self.bind_or_err(r, Term::int(val))?
                }
                other => bad("rand_num/2", format!("bad bound {other}")),
            },

            ("distribute", [i, dt, msg]) | ("distribute", [i, dt, msg, _]) => {
                let ack = args.get(3).cloned();
                let tuple = self.store.deref(dt);
                let idx = self.store.deref(i);
                match (&idx, &tuple) {
                    (Term::Var(v), _) => BuiltinOutcome::Suspend(vec![*v]),
                    (_, Term::Var(v)) => BuiltinOutcome::Suspend(vec![*v]),
                    (Term::Int(ix), Term::Tuple(_, slots)) => {
                        if *ix < 1 || *ix as usize > slots.len() {
                            bad(
                                "distribute/3",
                                format!("stream index {ix} out of 1..{}", slots.len()),
                            )
                        } else {
                            // A slot may hold the port directly, or a record
                            // whose first field is the port (the Supervise
                            // motif stores `m(P, Wire, Stop)` so the monitor
                            // can be placed from the bootstrap side).
                            let slot = match self.store.deref(&slots[*ix as usize - 1]) {
                                Term::Tuple(_, fields) if !fields.is_empty() => {
                                    self.store.deref(&fields[0])
                                }
                                other => other,
                            };
                            match slot {
                                Term::Port(p) => {
                                    let sent = self.port_send(p, msg.clone())?;
                                    match (sent, ack) {
                                        (BuiltinOutcome::Done, Some(a)) => {
                                            self.bind_or_err(&a, Term::atom("ok"))?
                                        }
                                        (outcome, _) => outcome,
                                    }
                                }
                                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                                other => {
                                    bad("distribute/3", format!("slot {ix} is not a port: {other}"))
                                }
                            }
                        }
                    }
                    _ => bad("distribute/3", "expects integer index and stream tuple"),
                }
            }

            ("make_tuple", [n, t]) => match self.store.deref(n) {
                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                Term::Int(n) if n > 0 => {
                    let slots: Vec<Term> =
                        (0..n).map(|_| Term::Var(self.store.new_var())).collect();
                    let tuple = Term::tuple("dt", slots);
                    self.bind_or_err(t, tuple)?
                }
                other => bad("make_tuple/2", format!("bad arity {other}")),
            },

            ("put_arg", [i, t, v]) => {
                let idx = self.store.deref(i);
                let tuple = self.store.deref(t);
                match (&idx, &tuple) {
                    (Term::Var(w), _) => BuiltinOutcome::Suspend(vec![*w]),
                    (_, Term::Var(w)) => BuiltinOutcome::Suspend(vec![*w]),
                    (Term::Int(ix), Term::Tuple(_, slots)) => {
                        if *ix < 1 || *ix as usize > slots.len() {
                            bad("put_arg/3", format!("index {ix} out of range"))
                        } else {
                            match self.store.deref(&slots[*ix as usize - 1]) {
                                Term::Var(slot) => {
                                    let value = self.store.deref(v);
                                    self.bind_now(slot, value)?;
                                    BuiltinOutcome::Done
                                }
                                _ => bad("put_arg/3", format!("slot {ix} already filled")),
                            }
                        }
                    }
                    _ => bad("put_arg/3", "expects integer index and tuple"),
                }
            }

            // `put_arg(I, T, V, Won)`: test-and-set form of `put_arg/3`.
            // Fills slot `I` with `V` and binds `Won := yes` iff the slot
            // is still unbound; otherwise leaves the slot alone and binds
            // `Won := no`. Suspends until `V` is data, so a slot is only
            // ever filled with a value and a loser reliably sees it filled.
            // The whole test-and-set is one reduction, so racers on the
            // same node serialize: exactly one wins. The Supervise motif
            // uses this to make bootstrap idempotent under duplicated
            // `server_init` delivery.
            ("put_arg", [i, t, v, won]) => {
                let idx = self.store.deref(i);
                let tuple = self.store.deref(t);
                match (&idx, &tuple) {
                    (Term::Var(w), _) => BuiltinOutcome::Suspend(vec![*w]),
                    (_, Term::Var(w)) => BuiltinOutcome::Suspend(vec![*w]),
                    (Term::Int(ix), Term::Tuple(_, slots)) => {
                        if *ix < 1 || *ix as usize > slots.len() {
                            bad("put_arg/4", format!("index {ix} out of range"))
                        } else {
                            match self.store.deref(v) {
                                Term::Var(pv) => BuiltinOutcome::Suspend(vec![pv]),
                                value => match self.store.deref(&slots[*ix as usize - 1]) {
                                    Term::Var(slot) => {
                                        self.bind_now(slot, value)?;
                                        self.bind_or_err(won, Term::atom("yes"))?
                                    }
                                    _ => self.bind_or_err(won, Term::atom("no"))?,
                                },
                            }
                        }
                    }
                    _ => bad("put_arg/4", "expects integer index and tuple"),
                }
            }

            ("open_port", [p, s]) => match (self.store.deref(p), self.store.deref(s)) {
                (Term::Var(pv), Term::Var(sv)) => {
                    let id = self.ports.push(PortState {
                        owner: self.current_node,
                        tail: sv,
                    });
                    self.bind_now(pv, Term::Port(id))?;
                    BuiltinOutcome::Done
                }
                _ => bad("open_port/2", "both arguments must be unbound variables"),
            },

            ("send_port", [p, m]) => match self.store.deref(p) {
                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                Term::Port(id) => self.port_send(id, m.clone())?,
                other => bad("send_port/2", format!("not a port: {other}")),
            },

            ("merge", [streams, out]) => match self.store.deref(streams) {
                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                list => {
                    // Walk as far as the list is instantiated; suspend on an
                    // unbound tail so late-added streams still join.
                    let mut items = Vec::new();
                    let mut cur = list;
                    loop {
                        match cur {
                            Term::Nil => break,
                            Term::List(cell) => {
                                items.push(cell.0.clone());
                                cur = self.store.deref(&cell.1);
                            }
                            Term::Var(v) => return Ok(BuiltinOutcome::Suspend(vec![v])),
                            other => return Ok(bad("merge/2", format!("improper list: {other}"))),
                        }
                    }
                    match self.store.deref(out) {
                        Term::Var(ov) => {
                            let id = self.ports.push(PortState {
                                owner: self.current_node,
                                tail: ov,
                            });
                            let node = self.current_node;
                            for s in items {
                                self.spawn(Term::tuple("$forward", vec![s, Term::Port(id)]), node);
                            }
                            BuiltinOutcome::Done
                        }
                        _ => bad("merge/2", "output must be an unbound variable"),
                    }
                }
            },

            ("$forward", [s, p]) => match self.store.deref(s) {
                Term::Var(v) => BuiltinOutcome::Suspend(vec![v]),
                Term::Nil => BuiltinOutcome::Done,
                Term::List(cell) => {
                    let port = match self.store.deref(p) {
                        Term::Port(id) => id,
                        other => return Ok(bad("$forward/2", format!("not a port: {other}"))),
                    };
                    match self.port_send(port, cell.0.clone())? {
                        BuiltinOutcome::Done => {
                            let node = self.current_node;
                            self.spawn(
                                Term::tuple("$forward", vec![cell.1.clone(), p.clone()]),
                                node,
                            );
                            BuiltinOutcome::Done
                        }
                        other => other,
                    }
                }
                other => bad("$forward/2", format!("not a stream: {other}")),
            },

            ("$spawn_at", [place, g]) => match eval_arith(place, &self.store)? {
                Evaled::Suspend(vs) => BuiltinOutcome::Suspend(vs),
                Evaled::Num(n) => {
                    let target = self.map_node(n.as_f64() as i64);
                    let goal = self.store.deref(g);
                    self.spawn(goal, target);
                    BuiltinOutcome::Done
                }
            },

            ("work", [w]) => match eval_arith(w, &self.store)? {
                Evaled::Suspend(vs) => BuiltinOutcome::Suspend(vs),
                Evaled::Num(n) => {
                    let ticks = n.as_f64().max(0.0) as u64;
                    self.extra_cost += ticks;
                    BuiltinOutcome::Done
                }
            },

            ("print", [t]) => {
                let s = self.store.resolve(t).to_string();
                self.output.push(s);
                BuiltinOutcome::Done
            }

            ("current_node", [n]) => {
                let id = self.current_node.0 as i64 + 1;
                self.bind_or_err(n, Term::int(id))?
            }

            // `after_unless(Cancel, Ticks, T)`: arm a deterministic timer.
            // If `Cancel` is still unbound after `Ticks`, `T := timeout`
            // fires (waking racers); if `Cancel` was bound first the pending
            // timer evaporates without advancing any clock (see
            // `Machine::run`). Backbone of the Supervise motif's retry
            // backoff and heartbeat watchdogs. Under `TimerSource::WallClock`
            // (sharded machines only) the deadline is recorded for the
            // backend's timer wheel instead — same cancellation contract,
            // but 1 tick = 1 ms of real time and the fleet wakes for it.
            ("after_unless", [cancel, ticks, t]) => match eval_arith(ticks, &self.store)? {
                Evaled::Suspend(vs) => BuiltinOutcome::Suspend(vs),
                Evaled::Num(n) => {
                    let wait = n.as_f64().max(0.0) as u64;
                    let node = self.current_node;
                    self.metrics.timers_armed += 1;
                    if self.wall_timers_active() {
                        self.arm_wall_timer(node, wait, cancel.clone(), t.clone());
                    } else {
                        let deadline = self.now() + wait;
                        self.enqueue(
                            Term::tuple("$timer", vec![cancel.clone(), t.clone()]),
                            node,
                            deadline,
                        );
                    }
                    BuiltinOutcome::Done
                }
            },

            // A timer that survived to its deadline (the cancelled case is
            // filtered out by the scheduler before it gets here).
            ("$timer", [cancel, t]) => {
                if matches!(self.store.deref(cancel), Term::Var(_)) {
                    self.metrics.timers_fired += 1;
                    self.bind_or_err(t, Term::atom("timeout"))?
                } else {
                    self.metrics.timers_cancelled += 1;
                    BuiltinOutcome::Done
                }
            }

            // A wall-clock wheel entry delivered back into the shard
            // (`Machine::fire_wall_timer`). Same semantics as `'$timer'` at
            // its deadline, but this goal is regular gate-counted work: the
            // cancel flag may have been bound while the event was in flight,
            // in which case it evaporates here.
            ("$timer!", [cancel, t]) => {
                if matches!(self.store.deref(cancel), Term::Var(_)) {
                    self.metrics.timers_fired += 1;
                    self.bind_or_err(t, Term::atom("timeout"))?
                } else {
                    self.metrics.timers_cancelled += 1;
                    BuiltinOutcome::Done
                }
            }

            // `ack(V)`: idempotent acknowledgement. First call binds
            // `V := ok`; repeats (duplicate deliveries, replays) are no-ops
            // instead of double-assignment errors.
            ("ack", [v]) => match self.store.deref(v) {
                Term::Var(w) => {
                    self.bind_now(w, Term::atom("ok"))?;
                    BuiltinOutcome::Done
                }
                Term::Atom(a) if a.as_str() == "ok" => BuiltinOutcome::Done,
                other => bad("ack/1", format!("already bound to {other}")),
            },

            // `unique_id(N)`: run-wide fresh integer, for sequence numbers
            // (duplicate suppression in the Supervise motif). Run-global
            // even across workers in sharded execution.
            ("unique_id", [n]) => {
                let id = self.next_unique_id() as i64;
                self.bind_or_err(n, Term::int(id))?
            }

            // A delayed port message arriving at last (fault injection);
            // accounting happened at send time.
            ("$deliver", [p, m]) => match self.store.deref(p) {
                Term::Port(id) => {
                    self.port_append(id, m.clone())?;
                    BuiltinOutcome::Done
                }
                other => bad("$deliver/2", format!("not a port: {other}")),
            },

            // `arg(I, T, V)`: V is the I-th argument of tuple T (1-based).
            // The selected argument may itself be unbound — it is aliased,
            // not waited for.
            ("arg", [i, t, v]) => {
                let idx = self.store.deref(i);
                let tuple = self.store.deref(t);
                match (&idx, &tuple) {
                    (Term::Var(w), _) => BuiltinOutcome::Suspend(vec![*w]),
                    (_, Term::Var(w)) => BuiltinOutcome::Suspend(vec![*w]),
                    (Term::Int(ix), Term::Tuple(_, slots)) => {
                        if *ix < 1 || *ix as usize > slots.len() {
                            bad("arg/3", format!("index {ix} out of range"))
                        } else {
                            let value = slots[*ix as usize - 1].clone();
                            self.bind_or_err(v, value)?
                        }
                    }
                    _ => bad("arg/3", "expects integer index and tuple"),
                }
            }

            // `gauge(Name, Value)`: record a named per-node gauge; the
            // metrics keep the maximum seen (used by experiment E2 to track
            // pending-value queue lengths in Tree-Reduce-2).
            ("gauge", [name_t, value_t]) => {
                let gname = self.store.deref(name_t);
                match (gname.functor(), self.store.deref(value_t)) {
                    (_, Term::Var(v)) => BuiltinOutcome::Suspend(vec![v]),
                    (Some((a, 0)), Term::Int(val)) => {
                        let node = self.current_node;
                        self.metrics
                            .record_gauge(a.as_str(), node, val.max(0) as u64);
                        BuiltinOutcome::Done
                    }
                    _ => bad("gauge/2", "expects an atom name and integer value"),
                }
            }

            _ => bad(name, "wrong arguments for builtin"),
        })
    }

    /// `:=` / `=`. With `arith` set, an arithmetic-expression RHS is
    /// evaluated before assignment.
    fn assign(&mut self, lhs: &Term, rhs: &Term, arith: bool) -> StrandResult<BuiltinOutcome> {
        let target = self.store.deref(lhs);
        let Term::Var(v) = target else {
            // Assigning to a bound variable is the paper's run-time error.
            return Ok(BuiltinOutcome::Error(StrandError::DoubleAssign {
                var: VarId(u32::MAX),
                existing: self.store.resolve(lhs),
                attempted: self.store.resolve(rhs),
            }));
        };
        let value = self.store.deref(rhs);
        if arith && is_arith_expr(&value) && !value.is_number() {
            match eval_arith(&value, &self.store)? {
                Evaled::Suspend(vs) => return Ok(BuiltinOutcome::Suspend(vs)),
                Evaled::Num(n) => {
                    self.bind_now(v, n.to_term())?;
                    return Ok(BuiltinOutcome::Done);
                }
            }
        }
        self.bind_now(v, value)?;
        Ok(BuiltinOutcome::Done)
    }

    fn bind_or_err(&mut self, dest: &Term, value: Term) -> StrandResult<BuiltinOutcome> {
        match self.store.deref(dest) {
            Term::Var(v) => {
                self.bind_now(v, value)?;
                Ok(BuiltinOutcome::Done)
            }
            other => Ok(BuiltinOutcome::Error(StrandError::DoubleAssign {
                var: VarId(u32::MAX),
                existing: other,
                attempted: value,
            })),
        }
    }

    /// Append `msg` to a port's stream, with message accounting and — for
    /// cross-node sends — fault injection. Note what a crash does *not*
    /// break: the stream is data in the global store, so sends to a port
    /// whose owner died still append (a restarted consumer can replay
    /// them); only injected drops lose messages.
    fn port_send(&mut self, port: u32, msg: Term) -> StrandResult<BuiltinOutcome> {
        let msg = self.store.deref(&msg);
        let owner = self.ports.owner(port);
        if self.current_node != owner {
            self.metrics.count_message(self.current_node, owner);
            match self.edge_delivery(self.current_node, owner) {
                Delivery::Deliver => {}
                Delivery::Drop => {
                    self.record_drop(owner, &msg);
                    return Ok(BuiltinOutcome::Done);
                }
                Delivery::Duplicate => {
                    self.metrics.msgs_duplicated += 1;
                    if self.config.record_trace {
                        let ev = TraceEvent::Duplicate {
                            time: self.now(),
                            from: self.current_node,
                            to: owner,
                            goal: goal_text(&msg),
                        };
                        self.push_trace(ev);
                    }
                    self.count_cross_port(&msg);
                    self.port_append(port, msg.clone())?;
                }
                Delivery::Delay(extra) => {
                    // The message goes on the wire now but lands later: an
                    // internal courier on the sending node performs the
                    // append after `extra` ticks, and the tail binding then
                    // pays the usual cross-node latency on top.
                    self.metrics.msgs_delayed += 1;
                    self.count_cross_port(&msg);
                    let node = self.current_node;
                    let at = self.now() + extra;
                    self.enqueue(
                        Term::tuple("$deliver", vec![Term::Port(port), msg]),
                        node,
                        at,
                    );
                    return Ok(BuiltinOutcome::Done);
                }
            }
            self.count_cross_port(&msg);
        } else {
            self.metrics.port_msgs_local += 1;
        }
        self.port_append(port, msg)?;
        Ok(BuiltinOutcome::Done)
    }

    /// Raw stream append: allocate the next cell, atomically swap it in as
    /// the port's tail, then bind the old tail (waking consumers). The bind
    /// happens *outside* the port lock, so concurrent appends from different
    /// workers each link a distinct cons cell and the stream stays linear —
    /// only the arrival order is scheduling-dependent. No accounting, no
    /// faults.
    pub(crate) fn port_append(&mut self, port: u32, msg: Term) -> StrandResult<()> {
        let new_tail = self.store.new_var();
        let old_tail = self.ports.swap_tail(port, new_tail);
        let cell = Term::cons(msg, Term::Var(new_tail));
        self.bind_now(old_tail, cell)?;
        Ok(())
    }

    fn count_cross_port(&mut self, msg: &Term) {
        self.metrics.port_msgs_cross += 1;
        if let Some((f, _)) = msg.functor() {
            *self
                .metrics
                .port_msgs_by_functor
                .entry(f.as_str().to_string())
                .or_insert(0) += 1;
        }
    }
}

/// Outcome of `length/2` probing.
enum LengthOutcome {
    Len(i64),
    Suspend(Vec<VarId>),
    Bad,
}

impl Machine {
    fn term_length(&self, t: &Term) -> LengthOutcome {
        match self.store.deref(t) {
            Term::Var(v) => LengthOutcome::Suspend(vec![v]),
            Term::Tuple(_, args) => LengthOutcome::Len(args.len() as i64),
            Term::Nil => LengthOutcome::Len(0),
            list @ Term::List(_) => {
                let mut n = 0i64;
                let mut cur = list;
                loop {
                    match cur {
                        Term::Nil => return LengthOutcome::Len(n),
                        Term::List(cell) => {
                            n += 1;
                            cur = self.store.deref(&cell.1);
                        }
                        Term::Var(v) => return LengthOutcome::Suspend(vec![v]),
                        _ => return LengthOutcome::Bad,
                    }
                }
            }
            _ => LengthOutcome::Bad,
        }
    }
}
