//! Execution backends: pluggable engines that run a compiled motif program.
//!
//! The paper's machine model (§2.1) is independent of how reductions are
//! scheduled; this crate ships the deterministic discrete-event simulator,
//! and crate `strand-parallel` adds a real multi-threaded engine. Callers
//! pick one through [`MachineConfig::backend`](crate::config::Backend) — the
//! program, goal, and foreign code are identical either way, which is what
//! makes the conformance harness (`tests/conformance.rs`) possible.
//!
//! To avoid a dependency cycle (`strand-parallel` depends on this crate),
//! the parallel engine registers itself at runtime via
//! [`register_parallel_backend`]; `strand_parallel::install()` does that.

use crate::config::{Backend, MachineConfig};
use crate::foreign::ForeignLib;
use crate::{ast_to_term, GoalResult, Machine};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use strand_core::{StrandError, StrandResult};
use strand_parse::{compile_program, parse_term, Program};

/// An engine that can run a goal against a parsed program.
pub trait ExecBackend: Send + Sync {
    /// Short engine name (`"deterministic"`, `"parallel"`).
    fn name(&self) -> &'static str;

    /// Compile `program`, run `goal_src` under `config` with `lib`
    /// installed, and return the report plus resolved goal bindings.
    fn run_program(
        &self,
        program: &Program,
        goal_src: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<GoalResult>;
}

/// The discrete-event reference engine ([`Machine::run`]).
pub struct DeterministicBackend;

impl ExecBackend for DeterministicBackend {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn run_program(
        &self,
        program: &Program,
        goal_src: &str,
        config: MachineConfig,
        lib: &ForeignLib,
    ) -> StrandResult<GoalResult> {
        if !config.chaos.is_empty() {
            return Err(StrandError::UnsupportedFaultPlan {
                backend: "deterministic".to_string(),
                plan: "wall-clock (ChaosPlan)".to_string(),
                hint: "chaos plans need real worker threads; run on the parallel \
                       backend, or use MachineConfig::faults (FaultPlan) for \
                       virtual-time fault injection here"
                    .to_string(),
            });
        }
        let goal_ast = parse_term(goal_src).map_err(|e| StrandError::Other(e.to_string()))?;
        let compiled = compile_program(program).map_err(|e| StrandError::Other(e.to_string()))?;
        let mut machine = Machine::new(compiled, config);
        machine.install_lib(lib);
        let mut vars = BTreeMap::new();
        let goal = ast_to_term(&goal_ast, &mut machine, &mut vars);
        machine.start(goal);
        let report = machine.run()?;
        let bindings = vars
            .into_iter()
            .map(|(name, term)| (name, machine.store().resolve(&term)))
            .collect();
        Ok(GoalResult { report, bindings })
    }
}

static PARALLEL_BACKEND: OnceLock<Box<dyn ExecBackend>> = OnceLock::new();

/// Register the engine used for [`Backend::Parallel`] configs. Idempotent:
/// later registrations are ignored. Called by `strand_parallel::install()`.
pub fn register_parallel_backend(backend: Box<dyn ExecBackend>) {
    let _ = PARALLEL_BACKEND.set(backend);
}

/// Resolve the engine a config asks for.
pub fn backend_for(config: &MachineConfig) -> StrandResult<&'static dyn ExecBackend> {
    match config.backend {
        Backend::Deterministic => {
            static DETERMINISTIC: DeterministicBackend = DeterministicBackend;
            Ok(&DETERMINISTIC)
        }
        Backend::Parallel { .. } => PARALLEL_BACKEND.get().map(|b| b.as_ref()).ok_or_else(|| {
            StrandError::Other(
                "parallel backend not registered: call strand_parallel::install() first"
                    .to_string(),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_backend_runs_goals() {
        let program = strand_parse::parse_program("double(X, Y) :- Y := X * 2.").unwrap();
        let r = DeterministicBackend
            .run_program(
                &program,
                "double(21, V)",
                MachineConfig::default(),
                &ForeignLib::new(),
            )
            .unwrap();
        assert_eq!(r.bindings["V"].to_string(), "42");
    }

    #[test]
    fn deterministic_backend_rejects_chaos_plans() {
        use crate::config::ChaosPlan;
        let program = strand_parse::parse_program("noop.").unwrap();
        let config = MachineConfig::default().chaos(ChaosPlan::default().drop_prob(0.1));
        let err = DeterministicBackend
            .run_program(&program, "noop", config, &ForeignLib::new())
            .unwrap_err();
        assert!(
            matches!(err, StrandError::UnsupportedFaultPlan { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("parallel"), "{err}");
    }

    #[test]
    fn unregistered_parallel_backend_is_a_clear_error() {
        // The registry is process-global, so this test only asserts the
        // error shape when nothing has installed a parallel engine yet; if
        // another test registered one, resolution succeeding is also fine.
        let config = MachineConfig::default().parallel(2);
        match backend_for(&config) {
            Ok(b) => assert_eq!(b.name(), "parallel"),
            Err(e) => assert!(e.to_string().contains("install"), "{e}"),
        }
    }
}
