//! # strand-machine
//!
//! A parallel abstract machine for the motif language, standing in for the
//! Strand multicomputer runtimes of the paper (Sequent Symmetry, iPSC
//! hypercubes, transputer surfaces). Programs execute on `V` virtual nodes
//! under a deterministic discrete-event scheduler; every quantity the
//! paper's claims mention — per-node load, message counts by functor, live
//! concurrent evaluations, virtual-time makespan — is measured exactly
//! (see [`Metrics`]).
//!
//! ## Quick start
//!
//! ```
//! use strand_machine::{run_goal, MachineConfig};
//!
//! let src = r#"
//!     double(In, Out) :- Out := In * 2.
//! "#;
//! let result = run_goal(src, "double(21, X)", MachineConfig::default()).unwrap();
//! assert_eq!(result.bindings["X"].to_string(), "42");
//! ```
//!
//! Goals may place processes on numbered nodes (`Goal@3`) once the machine
//! is configured with several nodes; the `@random` pragma is *not*
//! executable — it is resolved by the `Rand` motif transformation (crate
//! `motifs`), exactly as in §3.3 of the paper.

pub mod backend;
pub mod builtins;
pub mod config;
pub mod exec;
pub mod foreign;
pub mod machine;
pub mod metrics;
pub mod trace;

pub use backend::{backend_for, register_parallel_backend, DeterministicBackend, ExecBackend};
pub use config::TimerSource;
pub use config::{Backend, ChaosPlan, EdgeFaults, ExecMode, FaultPlan, MachineConfig};
pub use foreign::{ForeignFn, ForeignLib};
pub use machine::{
    merge_shard_reports, DrainState, Job, Machine, Routed, RunReport, RunStatus, ShardReport,
    SharedWorld, StoreHandle, WallTimer, WORKER_PID_SHIFT,
};
pub use metrics::Metrics;
pub use trace::{render_trace, trace_summary, TraceEvent};

use std::collections::BTreeMap;
use strand_core::{StrandError, StrandResult, Term};
use strand_parse::{parse_program, Ast};

/// Result of running a goal: the final report plus the resolved values of
/// the goal's named variables.
#[derive(Clone, Debug)]
pub struct GoalResult {
    pub report: RunReport,
    pub bindings: BTreeMap<String, Term>,
}

impl GoalResult {
    /// True when the run ended with every process reduced.
    pub fn completed(&self) -> bool {
        self.report.status == RunStatus::Completed
    }
}

/// Convert a surface term into a runtime term, sharing variables through
/// `vars` (named variables map to store variables; wildcards are fresh).
pub fn ast_to_term(ast: &Ast, machine: &mut Machine, vars: &mut BTreeMap<String, Term>) -> Term {
    match ast {
        Ast::Var(name) => vars
            .entry(name.clone())
            .or_insert_with(|| Term::Var(machine.store_mut().new_var()))
            .clone(),
        Ast::Wild => Term::Var(machine.store_mut().new_var()),
        Ast::Int(i) => Term::Int(*i),
        Ast::Float(x) => Term::Float(*x),
        Ast::Atom(a) => Term::atom(a.as_str()),
        Ast::Str(s) => Term::str(s.as_str()),
        Ast::Nil => Term::Nil,
        Ast::Tuple(name, args) => Term::tuple(
            name.as_str(),
            args.iter().map(|a| ast_to_term(a, machine, vars)).collect(),
        ),
        Ast::List(h, t) => Term::cons(ast_to_term(h, machine, vars), ast_to_term(t, machine, vars)),
    }
}

/// Parse, compile and run `goal_src` against `program_src`.
pub fn run_goal(
    program_src: &str,
    goal_src: &str,
    config: MachineConfig,
) -> StrandResult<GoalResult> {
    let program = parse_program(program_src).map_err(|e| StrandError::Other(e.to_string()))?;
    run_parsed_goal(&program, goal_src, config)
}

/// Run a goal against an already-parsed program (used by the motif crate,
/// whose transformations produce [`strand_parse::Program`] values).
/// Dispatches on [`MachineConfig::backend`].
pub fn run_parsed_goal(
    program: &strand_parse::Program,
    goal_src: &str,
    config: MachineConfig,
) -> StrandResult<GoalResult> {
    run_parsed_goal_with_lib(program, goal_src, config, &ForeignLib::new())
}

/// Like [`run_parsed_goal`], with a library of pure foreign procedures
/// installed on whichever engine runs the goal.
pub fn run_parsed_goal_with_lib(
    program: &strand_parse::Program,
    goal_src: &str,
    config: MachineConfig,
    lib: &ForeignLib,
) -> StrandResult<GoalResult> {
    backend::backend_for(&config)?.run_program(program, goal_src, config, lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, goal: &str) -> GoalResult {
        run_goal(src, goal, MachineConfig::default()).expect("run failed")
    }

    const FIGURE1: &str = r#"
        % Figure 1 of the paper: synchronous producer/consumer.
        go(N) :- producer(N, Xs, sync), consumer(Xs).
        producer(N, Xs, sync) :- N > 0 |
            Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
        producer(0, Xs, _) :- Xs := [].
        consumer([X|Xs]) :- X := sync, consumer(Xs).
        consumer([]).
    "#;

    #[test]
    fn figure1_runs_to_completion() {
        let r = run(FIGURE1, "go(4)");
        assert!(r.completed(), "status: {:?}", r.report.status);
        // Every producer step waits for the consumer's sync ack, so there
        // must be suspensions — the paper's synchronous communication.
        assert!(r.report.metrics.suspensions >= 4);
    }

    #[test]
    fn figure1_stream_is_synchronous() {
        // With the synchronous ack protocol the producer can never run more
        // than one element ahead: peak queue stays small regardless of N.
        let r = run(FIGURE1, "go(64)");
        assert!(r.completed());
        assert!(
            r.report.metrics.peak_queue[0] < 8,
            "peak queue {} too large for a synchronous protocol",
            r.report.metrics.peak_queue[0]
        );
    }

    #[test]
    fn arithmetic_and_data_assignment() {
        let src = "mk(X, Y, L) :- X := 2 + 3, Y := [a|T], T := [], L := X - 1.";
        let r = run(src, "mk(X, Y, L)");
        assert!(r.completed());
        assert_eq!(r.bindings["X"].to_string(), "5");
        assert_eq!(r.bindings["Y"].to_string(), "[a]");
        assert_eq!(r.bindings["L"].to_string(), "4");
    }

    #[test]
    fn dataflow_suspension_waits_for_producer() {
        let src = r#"
            go(V) :- add(A, B, V), supply(A, B).
            add(A, B, V) :- V := A + B.
            supply(A, B) :- A := 20, B := 22.
        "#;
        let r = run(src, "go(V)");
        assert!(r.completed());
        assert_eq!(r.bindings["V"].to_string(), "42");
        assert!(r.report.metrics.suspensions >= 1);
    }

    #[test]
    fn guards_select_rules() {
        let src = r#"
            classify(N, C) :- N > 0 | C := pos.
            classify(0, C) :- C := zero.
            classify(N, C) :- N < 0 | C := neg.
        "#;
        assert_eq!(run(src, "classify(5, C)").bindings["C"].to_string(), "pos");
        assert_eq!(run(src, "classify(0, C)").bindings["C"].to_string(), "zero");
        assert_eq!(run(src, "classify(-5, C)").bindings["C"].to_string(), "neg");
    }

    #[test]
    fn otherwise_applies_after_definite_failure() {
        let src = r#"
            kind(1, K) :- K := one.
            kind(_, K) :- otherwise | K := many.
        "#;
        assert_eq!(run(src, "kind(1, K)").bindings["K"].to_string(), "one");
        assert_eq!(run(src, "kind(7, K)").bindings["K"].to_string(), "many");
    }

    #[test]
    fn double_assignment_is_runtime_error() {
        let src = "boom(X) :- X := 1, X := 2.";
        let err = run_goal(src, "boom(X)", MachineConfig::default()).unwrap_err();
        assert!(matches!(err, StrandError::DoubleAssign { .. }), "{err}");
    }

    #[test]
    fn no_matching_rule_is_reported() {
        let src = "f(1, V) :- V := ok.";
        let err = run_goal(src, "f(2, V)", MachineConfig::default()).unwrap_err();
        assert!(matches!(err, StrandError::NoMatchingRule { .. }), "{err}");
    }

    #[test]
    fn undefined_procedure_is_reported() {
        let err = run_goal("f(X) :- g(X).", "f(1)", MachineConfig::default()).unwrap_err();
        assert!(
            matches!(err, StrandError::UndefinedProcedure { ref name, arity: 1 } if name == "g"),
            "{err}"
        );
    }

    #[test]
    fn deadlocked_program_reports_quiescence() {
        let src = "wait(X, Y) :- X > 0 | Y := done.";
        let r = run(src, "wait(X, Y)"); // X never bound
        assert!(matches!(
            r.report.status,
            RunStatus::Quiescent { suspended: 1 }
        ));
        assert_eq!(r.report.suspended_goals.len(), 1);
    }

    #[test]
    fn placement_spawns_on_named_nodes() {
        let src = r#"
            fan(V1, V2, V3) :- tag(V1)@1, tag(V2)@2, tag(V3)@3.
            tag(V) :- current_node(V).
        "#;
        let r = run_goal(src, "fan(A, B, C)", MachineConfig::with_nodes(3)).unwrap();
        assert!(r.completed());
        assert_eq!(r.bindings["A"].to_string(), "1");
        assert_eq!(r.bindings["B"].to_string(), "2");
        assert_eq!(r.bindings["C"].to_string(), "3");
        // Two of the three spawns crossed nodes (the goal starts on node 1).
        assert_eq!(r.report.metrics.remote_spawns, 2);
    }

    #[test]
    fn placement_wraps_modulo_node_count() {
        let src = "go(V) :- tag(V)@5. tag(V) :- current_node(V).";
        let r = run_goal(src, "go(V)", MachineConfig::with_nodes(4)).unwrap();
        // Node 5 on a 4-node machine wraps to node 1 (1-based).
        assert_eq!(r.bindings["V"].to_string(), "1");
    }

    #[test]
    fn deferred_placement_waits_for_node_number() {
        let src = r#"
            go(V) :- pick(J), tag(V)@J.
            pick(J) :- J := 2.
            tag(V) :- current_node(V).
        "#;
        let r = run_goal(src, "go(V)", MachineConfig::with_nodes(2)).unwrap();
        assert!(r.completed());
        assert_eq!(r.bindings["V"].to_string(), "2");
    }

    #[test]
    fn rand_num_is_deterministic_per_seed() {
        let src = "go(A, B) :- rand_num(100, A), rand_num(100, B).";
        let r1 = run_goal(src, "go(A, B)", MachineConfig::default().seed(1)).unwrap();
        let r2 = run_goal(src, "go(A, B)", MachineConfig::default().seed(1)).unwrap();
        let r3 = run_goal(src, "go(A, B)", MachineConfig::default().seed(2)).unwrap();
        assert_eq!(r1.bindings["A"], r2.bindings["A"]);
        assert_eq!(r1.bindings["B"], r2.bindings["B"]);
        assert!(r1.bindings["A"] != r3.bindings["A"] || r1.bindings["B"] != r3.bindings["B"]);
    }

    #[test]
    fn ports_deliver_in_order() {
        let src = r#"
            go(Out) :- open_port(P, S), feed(P), collect(S, Out).
            feed(P) :- send_port(P, 1), send_port(P, 2), send_port(P, 3).
            collect([A|T], Out) :- collect2(T, A, Out).
            collect2([B|T], A, Out) :- collect3(T, A, B, Out).
            collect3([C|_], A, B, Out) :- Out := seen(A, B, C).
        "#;
        let r = run(src, "go(Out)");
        assert_eq!(r.bindings["Out"].to_string(), "seen(1,2,3)");
    }

    #[test]
    fn merge_interleaves_two_streams() {
        let src = r#"
            go(N) :- produce(2, As), produce(3, Bs), merge([As, Bs], M), count(M, 0, N, 5).
            produce(0, S) :- S := [].
            produce(K, S) :- K > 0 | S := [K|S1], K1 := K - 1, produce(K1, S1).
            count(_, Acc, N, 0) :- N := Acc.
            count([_|T], Acc, N, Left) :- Left > 0 |
                Acc1 := Acc + 1, Left1 := Left - 1, count(T, Acc1, N, Left1).
        "#;
        let r = run(src, "go(N)");
        assert_eq!(r.bindings["N"].to_string(), "5");
    }

    #[test]
    fn work_advances_virtual_time() {
        let src = "go :- work(1000).";
        let r = run(src, "go");
        assert!(r.report.metrics.makespan >= 1000);
        assert!(r.report.metrics.busy[0] >= 1000);
    }

    #[test]
    fn print_collects_output() {
        let src = "go :- print(hello), print(f(1, 2)).";
        let r = run(src, "go");
        assert_eq!(
            r.report.output,
            vec!["hello".to_string(), "f(1,2)".to_string()]
        );
    }

    #[test]
    fn make_tuple_and_put_arg() {
        let src = r#"
            go(V) :- make_tuple(3, T), put_arg(2, T, hi), probe(T, V).
            probe(dt(_, X, _), V) :- V := X.
        "#;
        let r = run(src, "go(V)");
        assert_eq!(r.bindings["V"].to_string(), "hi");
    }

    #[test]
    fn length_of_tuples_and_lists() {
        let src = r#"
            go(A, B) :- make_tuple(4, T), length(T, A), length([x, y, z], B).
        "#;
        let r = run(src, "go(A, B)");
        assert_eq!(r.bindings["A"].to_string(), "4");
        assert_eq!(r.bindings["B"].to_string(), "3");
    }

    #[test]
    fn budget_exhaustion_detected() {
        let src = "spin :- spin.";
        let cfg = MachineConfig {
            max_reductions: 1000,
            ..Default::default()
        };
        let err = run_goal(src, "spin", cfg).unwrap_err();
        assert!(matches!(err, StrandError::BudgetExhausted { .. }));
    }

    #[test]
    fn cross_node_latency_shows_in_makespan() {
        let src = r#"
            go(V) :- step(V)@2.
            step(V) :- V := done.
        "#;
        let fast = run_goal(src, "go(V)", MachineConfig::with_nodes(2).latency(1)).unwrap();
        let slow = run_goal(src, "go(V)", MachineConfig::with_nodes(2).latency(1000)).unwrap();
        assert!(slow.report.metrics.makespan > fast.report.metrics.makespan + 900);
    }

    #[test]
    fn tracked_gauge_counts_live_processes() {
        // Three `eval` processes are spawned at once, all waiting on X: the
        // peak live count must be 3 on a single node.
        let src = r#"
            go(A, B, C) :- eval(X, A), eval(X, B), eval(X, C), fire(X).
            eval(X, V) :- V := X + 1.
            fire(X) :- X := 10.
        "#;
        let cfg = MachineConfig::default().track("eval");
        let r = run_goal(src, "go(A, B, C)", cfg).unwrap();
        assert!(r.completed());
        assert_eq!(r.report.metrics.max_peak_tracked(), 3);
        assert_eq!(r.bindings["A"].to_string(), "11");
    }

    #[test]
    fn determinism_full_metrics() {
        let src = r#"
            go(0).
            go(N) :- N > 0 |
                rand_num(4, R), tag(N)@R, N1 := N - 1, go(N1).
            tag(_).
        "#;
        let cfg = MachineConfig::with_nodes(4).seed(99);
        let a = run_goal(src, "go(50)", cfg.clone()).unwrap();
        let b = run_goal(src, "go(50)", cfg).unwrap();
        assert_eq!(a.report.metrics.reductions, b.report.metrics.reductions);
        assert_eq!(a.report.metrics.messages, b.report.metrics.messages);
        assert_eq!(a.report.metrics.makespan, b.report.metrics.makespan);
    }
}
