//! The parallel abstract machine.
//!
//! *"The state of a computation is represented by a pool of lightweight
//! processes. Execution proceeds by repeatedly selecting and attempting to
//! reduce processes in this pool"* (§2.1). This machine keeps one pool per
//! virtual node and drives them with a deterministic discrete-event
//! scheduler: each node has a local clock; a reduction costs
//! [`MachineConfig::reduction_cost`] ticks (plus explicit `work/1` costs);
//! anything crossing nodes — a spawned process, a stream message, a binding
//! that wakes a remote process — is delayed by [`MachineConfig::latency`].
//!
//! Determinism: the runnable node with the smallest next event time reduces
//! first (ties broken by node index, then process id), and randomness comes
//! only from the seeded `rand_num` primitive. Two runs with the same program,
//! goal and config are identical, metric for metric.

use crate::builtins::{is_builtin, BuiltinOutcome};
use crate::config::MachineConfig;
use crate::metrics::Metrics;
use crate::trace::{goal_text, TraceEvent};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use strand_core::{
    match_args, GuardOutcome, MatchOutcome, NodeId, SplitMix64, Store, StrandError, StrandResult,
    Term, Time, VarId,
};
use strand_parse::{CompiledProgram, CompiledRule};

/// A queued (runnable) process.
#[derive(Clone, Debug)]
pub(crate) struct QItem {
    pub ready_at: Time,
    pub pid: u64,
    pub goal: Term,
    pub tracked: bool,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.pid == other.pid
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest item is on top.
        (other.ready_at, other.pid).cmp(&(self.ready_at, self.pid))
    }
}

/// One runnable process bound for a node, handed between the machine and an
/// external driver. The deterministic scheduler keeps these in per-node
/// heaps; the multi-threaded backend routes them over channels instead (see
/// [`Machine::capture_spawns`]).
#[derive(Debug)]
pub struct Job {
    pub(crate) item: QItem,
    pub(crate) node: NodeId,
}

impl Job {
    /// The node this process must run on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True for `'$timer'/2` deadline processes. The parallel backend
    /// defers these while other work is runnable, so a timeout only
    /// fires once the value it guards has had every chance to arrive.
    pub fn is_timer(&self) -> bool {
        matches!(
            self.item.goal.functor().map(|(n, a)| (n.as_str(), a)),
            Some(("$timer", 2))
        )
    }
}

/// What [`Machine::step`] did with a job.
pub enum StepOutcome {
    /// The process reduced, suspended, or evaporated; nothing more to do.
    Reduced,
    /// A pure foreign call with ground inputs was lifted out: compute it
    /// without holding the machine, then call [`Machine::complete_foreign`].
    Foreign(crate::foreign::PendingForeign),
    /// The reduction budget is exhausted (`fail_fast` off): stop scheduling
    /// and report a truncated run.
    BudgetExhausted,
}

/// A process suspended on a set of variables.
#[derive(Clone, Debug)]
struct Susp {
    goal: Term,
    node: NodeId,
    vars: Vec<VarId>,
    tracked: bool,
}

struct Node {
    clock: Time,
    queue: BinaryHeap<QItem>,
}

/// The write end of a stream (see `strand-core::Term::Port`).
#[derive(Clone, Debug)]
pub(crate) struct PortState {
    pub owner: NodeId,
    pub tail: VarId,
}

/// Why the machine stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// Every process reduced to completion.
    Completed,
    /// No runnable processes remain, but some are suspended forever — normal
    /// for server networks that idle awaiting messages (quiescence), a bug
    /// for programs expected to deliver results.
    Quiescent { suspended: usize },
    /// Quiescent *and* at least one node is dead: surviving processes are
    /// suspended on bindings that can no longer arrive. `dead` counts the
    /// goals lost with the crashed nodes (snapshots in
    /// [`RunReport::dead_goals`]); `crashed_nodes` is 1-based.
    Partitioned {
        suspended: usize,
        dead: usize,
        crashed_nodes: Vec<u32>,
    },
    /// The reduction budget ran out with `fail_fast` off: the report carries
    /// everything computed so far (partial metrics and output).
    Truncated { reductions: u64 },
}

/// Result of a run: status, metrics and collected `print/1` output.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub status: RunStatus,
    pub metrics: Metrics,
    pub output: Vec<String>,
    /// Runtime errors when `fail_fast` is off (empty otherwise).
    pub errors: Vec<(Time, StrandError)>,
    /// Goals still suspended at quiescence (resolved snapshots, capped).
    pub suspended_goals: Vec<Term>,
    /// Goals lost with crashed nodes (resolved snapshots, capped at 16).
    pub dead_goals: Vec<Term>,
    /// Scheduler trace (empty unless `record_trace` was set).
    pub trace: Vec<TraceEvent>,
}

/// The abstract machine.
pub struct Machine {
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) config: MachineConfig,
    pub(crate) store: Store,
    nodes: Vec<Node>,
    suspended: HashMap<u64, Susp>,
    pub(crate) ports: Vec<PortState>,
    pub(crate) rng: SplitMix64,
    pub(crate) metrics: Metrics,
    next_pid: u64,
    pub(crate) output: Vec<String>,
    errors: Vec<(Time, StrandError)>,
    total_reductions: u64,
    /// Node currently reducing (valid inside a reduction step).
    pub(crate) current_node: NodeId,
    /// Extra virtual-time cost accumulated by builtins (work/1) during the
    /// current reduction.
    pub(crate) extra_cost: Time,
    /// Foreign (native Rust) procedures — the multilingual approach of
    /// §2.1; see [`crate::foreign`].
    pub(crate) foreign: crate::foreign::ForeignRegistry,
    trace: Vec<TraceEvent>,
    /// Fault injection state (see [`crate::config::FaultPlan`]). The fault
    /// RNG is separate from `rng` so faults never perturb `rand_num`.
    fault_rng: SplitMix64,
    crashed: Vec<bool>,
    /// Scheduled crashes not yet fired, as (node, time).
    pending_crashes: Vec<(NodeId, Time)>,
    /// Per-node reduction-cost multiplier (≥ 1; straggler injection).
    slowdown: Vec<u64>,
    /// Resolved snapshots of goals lost with crashed nodes (capped at 16).
    dead_goals: Vec<Term>,
    dead_count: usize,
    /// Counter backing the `unique_id/1` builtin (sequence numbers).
    pub(crate) seq_counter: u64,
    /// When set, newly runnable processes go here instead of the per-node
    /// heaps — the multi-threaded backend drains this after every step and
    /// routes the jobs over channels.
    outbox: Option<Vec<Job>>,
    /// Defer pure foreign calls (see [`crate::foreign::PendingForeign`]).
    pub(crate) defer_pure: bool,
    /// Deferred foreign call produced by the current reduction, if any.
    pending_foreign: Option<crate::foreign::PendingForeign>,
}

impl Machine {
    /// Build a machine for a compiled program.
    pub fn new(program: CompiledProgram, config: MachineConfig) -> Machine {
        let n = config.nodes as usize;
        let map = |j: u32| {
            let v = config.nodes as i64;
            NodeId((((j as i64 - 1) % v + v) % v) as u32)
        };
        let mut pending_crashes: Vec<(NodeId, Time)> = config
            .faults
            .crashes
            .iter()
            .map(|&(j, t)| (map(j), t))
            .collect();
        // Earliest first; ties broken by node index for determinism.
        pending_crashes.sort_by_key(|&(node, t)| (t, node.0));
        let mut slowdown = vec![1u64; n];
        for &(j, f) in &config.faults.slowdowns {
            slowdown[map(j).0 as usize] = f.max(1);
        }
        Machine {
            rng: SplitMix64::new(config.seed),
            fault_rng: SplitMix64::new(config.faults.seed),
            crashed: vec![false; n],
            pending_crashes,
            slowdown,
            dead_goals: Vec::new(),
            dead_count: 0,
            seq_counter: 0,
            metrics: Metrics::new(n),
            nodes: (0..n)
                .map(|_| Node {
                    clock: 0,
                    queue: BinaryHeap::new(),
                })
                .collect(),
            suspended: HashMap::new(),
            ports: Vec::new(),
            store: Store::new(),
            next_pid: 0,
            output: Vec::new(),
            errors: Vec::new(),
            total_reductions: 0,
            current_node: NodeId(0),
            extra_cost: 0,
            foreign: crate::foreign::ForeignRegistry::default(),
            trace: Vec::new(),
            program: Arc::new(program),
            config,
            outbox: None,
            defer_pure: false,
            pending_foreign: None,
        }
    }

    /// Access the store (for seeding goals and reading results).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (goal construction).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Map a 1-based language node number onto an internal node id.
    pub(crate) fn map_node(&self, j: i64) -> NodeId {
        let v = self.config.nodes as i64;
        NodeId((((j - 1) % v + v) % v) as u32)
    }

    fn fresh_pid(&mut self) -> u64 {
        self.next_pid += 1;
        self.next_pid
    }

    /// Record a trace event (no-op unless tracing is on — callers check).
    pub(crate) fn push_trace(&mut self, event: TraceEvent) {
        self.trace.push(event);
    }

    /// Enqueue a goal on a node at the given ready time.
    pub(crate) fn enqueue(&mut self, goal: Term, node: NodeId, ready_at: Time) {
        if self.crashed[node.0 as usize] {
            return; // dead nodes accept no work
        }
        let tracked = goal
            .functor()
            .is_some_and(|(name, _)| self.config.tracked.contains(name.as_str()));
        if tracked {
            self.metrics.track_spawn(node);
        }
        let pid = self.fresh_pid();
        self.push_item(
            node,
            QItem {
                ready_at,
                pid,
                goal,
                tracked,
            },
        );
    }

    /// Hand a runnable process to the scheduler: the per-node heap normally,
    /// the outbox when an external driver is routing jobs itself.
    fn push_item(&mut self, node: NodeId, item: QItem) {
        if let Some(out) = &mut self.outbox {
            out.push(Job { item, node });
            return;
        }
        let nq = &mut self.nodes[node.0 as usize];
        nq.queue.push(item);
        let qlen = nq.queue.len();
        if qlen > self.metrics.peak_queue[node.0 as usize] {
            self.metrics.peak_queue[node.0 as usize] = qlen;
        }
    }

    /// The executing node's clock (valid inside a reduction step).
    pub(crate) fn now(&self) -> Time {
        self.nodes[self.current_node.0 as usize].clock
    }

    /// Is the node dead per the fault plan?
    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.0 as usize]
    }

    /// Roll the fault dice for one cross-node delivery. Quiet edges consume
    /// no randomness, so an empty plan leaves runs bit-identical.
    pub(crate) fn edge_delivery(&mut self, from: NodeId, to: NodeId) -> Delivery {
        let ef = self.config.faults.edge_faults(from.0 + 1, to.0 + 1);
        if ef.is_quiet() {
            return Delivery::Deliver;
        }
        let roll = self.fault_rng.next_f64();
        if roll < ef.drop_prob {
            Delivery::Drop
        } else if roll < ef.drop_prob + ef.dup_prob {
            Delivery::Duplicate
        } else if roll < ef.drop_prob + ef.dup_prob + ef.delay_prob {
            Delivery::Delay(ef.delay_ticks)
        } else {
            Delivery::Deliver
        }
    }

    /// Record a lost delivery (fault injection or dead target).
    pub(crate) fn record_drop(&mut self, to: NodeId, goal: &Term) {
        self.metrics.msgs_dropped += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Drop {
                time: self.now(),
                from: self.current_node,
                to,
                goal: goal_text(goal),
            });
        }
    }

    /// Spawn a goal from the current reduction (applies cross-node latency,
    /// message accounting, and — for cross-node spawns — fault injection).
    pub(crate) fn spawn(&mut self, goal: Term, target: NodeId) {
        let now = self.now();
        if self.is_crashed(target) {
            // Delivery to a dead node is lost silently, like the machine it
            // models; the metrics and trace still see it.
            if target != self.current_node {
                self.metrics.count_message(self.current_node, target);
            }
            self.record_drop(target, &goal);
            return;
        }
        let mut duplicate_at = None;
        let ready_at = if target == self.current_node {
            now
        } else {
            self.metrics.count_message(self.current_node, target);
            self.metrics.remote_spawns += 1;
            let arrival = now + self.config.latency;
            match self.edge_delivery(self.current_node, target) {
                Delivery::Deliver => arrival,
                Delivery::Drop => {
                    self.record_drop(target, &goal);
                    return;
                }
                Delivery::Duplicate => {
                    self.metrics.msgs_duplicated += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Duplicate {
                            time: now,
                            from: self.current_node,
                            to: target,
                            goal: goal_text(&goal),
                        });
                    }
                    duplicate_at = Some(arrival + self.config.latency);
                    arrival
                }
                Delivery::Delay(extra) => {
                    self.metrics.msgs_delayed += 1;
                    arrival + extra
                }
            }
        };
        if self.config.record_trace {
            self.trace.push(TraceEvent::Spawn {
                time: now,
                from: self.current_node,
                to: target,
                goal: goal_text(&goal),
            });
        }
        if let Some(at) = duplicate_at {
            self.enqueue(goal.clone(), target, at);
        }
        self.enqueue(goal, target, ready_at);
    }

    /// Bind a variable from the current reduction, waking any waiters.
    pub(crate) fn bind_now(&mut self, v: VarId, value: Term) -> StrandResult<()> {
        let now = self.nodes[self.current_node.0 as usize].clock;
        let node = self.current_node;
        let waiters = self.store.bind(v, value, now, node)?;
        self.wake(waiters, now, node);
        Ok(())
    }

    fn wake(&mut self, waiters: Vec<u64>, bind_time: Time, binder: NodeId) {
        for pid in waiters {
            let Some(susp) = self.suspended.remove(&pid) else {
                continue; // already woken through another variable
            };
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            let arrival = if susp.node == binder {
                bind_time
            } else {
                self.metrics.count_message(binder, susp.node);
                bind_time + self.config.latency
            };
            if self.config.record_trace {
                self.trace.push(TraceEvent::Wake {
                    time: arrival,
                    binder,
                    node: susp.node,
                    pid,
                });
            }
            self.push_item(
                susp.node,
                QItem {
                    ready_at: arrival,
                    pid,
                    goal: susp.goal,
                    tracked: susp.tracked,
                },
            );
        }
    }

    fn suspend(&mut self, item: QItem, vars: Vec<VarId>) {
        debug_assert!(!vars.is_empty(), "suspending on empty var set");
        let pid = item.pid;
        // Defensive: if any variable got bound in the meantime (cannot
        // happen today — reduction is atomic — but cheap to guard), retry.
        let mut registered = Vec::new();
        for v in &vars {
            if self.store.add_waiter(*v, pid) {
                registered.push(*v);
            } else {
                for r in &registered {
                    self.store.remove_waiter(*r, pid);
                }
                let node = self.current_node;
                let now = self.nodes[node.0 as usize].clock;
                self.enqueue(item.goal, node, now);
                return;
            }
        }
        self.metrics.suspensions += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Suspend {
                time: self.nodes[self.current_node.0 as usize].clock,
                node: self.current_node,
                pid,
                goal: goal_text(&item.goal),
                vars: vars.len(),
            });
        }
        self.suspended.insert(
            pid,
            Susp {
                goal: item.goal,
                node: self.current_node,
                vars,
                tracked: item.tracked,
            },
        );
    }

    fn record_error(&mut self, e: StrandError) -> StrandResult<()> {
        if self.config.fail_fast {
            return Err(e);
        }
        let now = self.nodes[self.current_node.0 as usize].clock;
        self.errors.push((now, e));
        Ok(())
    }

    /// Run until no process is runnable. The initial goal must have been
    /// enqueued (see [`Machine::start`] or the `run_*` helpers in the crate
    /// root).
    pub fn run(&mut self) -> StrandResult<RunReport> {
        let mut truncated = false;
        loop {
            // Pick the node with the earliest next event.
            let mut best: Option<(Time, usize)> = None;
            for (i, n) in self.nodes.iter().enumerate() {
                if let Some(top) = n.queue.peek() {
                    let key = n.clock.max(top.ready_at);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
            }
            // Fire any scheduled crash due before the next event, so crashes
            // hit idle (suspended) nodes too, in global virtual-time order.
            if let Some(&(node, at)) = self.pending_crashes.first() {
                if best.is_none_or(|(bk, _)| at <= bk) {
                    self.pending_crashes.remove(0);
                    self.apply_crash(node, at);
                    continue;
                }
            }
            let Some((start, i)) = best else { break };
            if self.total_reductions >= self.config.max_reductions {
                if self.config.fail_fast {
                    return Err(StrandError::BudgetExhausted {
                        reductions: self.total_reductions + 1,
                    });
                }
                self.errors.push((
                    start,
                    StrandError::BudgetExhausted {
                        reductions: self.total_reductions,
                    },
                ));
                truncated = true;
                break;
            }
            let item = self.nodes[i].queue.pop().expect("peeked nonempty queue");
            // A '$timer'(Cancel, T) whose cancel flag is already bound
            // evaporates without advancing the clock or consuming budget:
            // cancelled timeouts must not stretch the makespan.
            if let Some(("$timer", 2)) = item.goal.functor().map(|(n, a)| (n.as_str(), a)) {
                if !matches!(self.store.deref(&item.goal.goal_args()[0]), Term::Var(_)) {
                    continue;
                }
            }
            self.total_reductions += 1;
            self.current_node = NodeId(i as u32);
            self.extra_cost = 0;
            self.nodes[i].clock = start;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Reduce {
                    time: start,
                    node: self.current_node,
                    pid: item.pid,
                    goal: goal_text(&item.goal),
                });
            }
            let step_result = self.reduce(item);
            let cost = (self.config.reduction_cost + self.extra_cost) * self.slowdown[i];
            self.nodes[i].clock = start + cost;
            self.metrics.busy[i] += cost;
            self.metrics.reductions[i] += 1;
            step_result?;
        }
        Ok(self.build_report(truncated))
    }

    /// Snapshot the final report. Public for execution backends that drive
    /// the machine step-by-step instead of calling [`Machine::run`].
    pub fn build_report(&mut self, truncated: bool) -> RunReport {
        self.metrics.makespan = self.nodes.iter().map(|n| n.clock).max().unwrap_or(0);
        self.metrics.total_reductions = self.total_reductions;
        let crashed_nodes: Vec<u32> = self
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        let status = if truncated {
            RunStatus::Truncated {
                reductions: self.total_reductions,
            }
        } else if !crashed_nodes.is_empty() && !self.suspended.is_empty() {
            // Survivors are stuck on bindings a dead node will never make.
            RunStatus::Partitioned {
                suspended: self.suspended.len(),
                dead: self.dead_count,
                crashed_nodes,
            }
        } else if self.suspended.is_empty() {
            RunStatus::Completed
        } else {
            RunStatus::Quiescent {
                suspended: self.suspended.len(),
            }
        };
        let mut suspended_goals: Vec<Term> = self
            .suspended
            .values()
            .take(16)
            .map(|s| self.store.resolve(&s.goal))
            .collect();
        suspended_goals.sort_by_key(|t| t.to_string());
        let mut dead_goals = self.dead_goals.clone();
        dead_goals.sort_by_key(|t| t.to_string());
        RunReport {
            status,
            metrics: self.metrics.clone(),
            output: self.output.clone(),
            errors: std::mem::take(&mut self.errors),
            suspended_goals,
            dead_goals,
            trace: std::mem::take(&mut self.trace),
        }
    }

    /// Kill a node: drop its queue, tear out its suspended goals (they will
    /// never wake), and remember diagnostics snapshots.
    fn apply_crash(&mut self, node: NodeId, at: Time) {
        let i = node.0 as usize;
        if self.crashed[i] {
            return;
        }
        self.crashed[i] = true;
        // The node's clock stays where computation stopped: a crash is not
        // work, and must not stretch the makespan.
        let lost_queue = self.nodes[i].queue.len();
        let lost: Vec<QItem> = self.nodes[i].queue.drain().collect();
        for item in &lost {
            if item.tracked {
                self.metrics.track_done(node);
            }
            if self.dead_goals.len() < 16 {
                self.dead_goals.push(self.store.resolve(&item.goal));
            }
        }
        self.dead_count += lost_queue;
        let dead_pids: Vec<u64> = self
            .suspended
            .iter()
            .filter(|(_, s)| s.node == node)
            .map(|(&pid, _)| pid)
            .collect();
        let lost_suspended = dead_pids.len();
        for pid in dead_pids {
            let susp = self.suspended.remove(&pid).expect("collected above");
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            if susp.tracked {
                self.metrics.track_done(node);
            }
            if self.dead_goals.len() < 16 {
                self.dead_goals.push(self.store.resolve(&susp.goal));
            }
        }
        self.dead_count += lost_suspended;
        self.metrics.nodes_crashed += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Crash {
                time: at,
                node,
                lost_queue,
                lost_suspended,
            });
        }
    }

    /// Enqueue `goal` on node 1 at time 0.
    pub fn start(&mut self, goal: Term) {
        self.enqueue(goal, NodeId(0), 0);
    }

    // --- Step-driver interface -------------------------------------------
    //
    // The multi-threaded backend (crate `strand-parallel`) does not use the
    // discrete-event loop in `run`. Instead it puts the machine in capture
    // mode, hands each runnable process to a worker thread as a [`Job`], and
    // calls [`Machine::step`] under a lock — newly spawned processes come
    // back through the outbox and are routed over channels.

    /// Switch spawn capture on or off. While on, every newly runnable
    /// process lands in the outbox (see [`Machine::take_outbox`]) instead of
    /// the per-node scheduler heaps.
    pub fn capture_spawns(&mut self, on: bool) {
        self.outbox = if on { Some(Vec::new()) } else { None };
    }

    /// Defer pure foreign calls so they can run outside the machine lock
    /// ([`StepOutcome::Foreign`]).
    pub fn set_defer_pure(&mut self, on: bool) {
        self.defer_pure = on;
    }

    /// Drain the captured jobs (capture mode only).
    pub fn take_outbox(&mut self) -> Vec<Job> {
        match &mut self.outbox {
            Some(out) => std::mem::take(out),
            None => Vec::new(),
        }
    }

    /// Processes currently suspended on unbound variables.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    /// Record the budget-exhausted error once (step drivers call this the
    /// first time they see [`StepOutcome::BudgetExhausted`]).
    pub fn note_truncated(&mut self) {
        let now = self.nodes[self.current_node.0 as usize].clock;
        self.errors.push((
            now,
            StrandError::BudgetExhausted {
                reductions: self.total_reductions,
            },
        ));
    }

    /// Reduce one job, with the same budget, cost, and metrics accounting as
    /// the event loop in [`Machine::run`]. Errors follow `fail_fast`: with it
    /// on, runtime errors surface as `Err`; with it off they are collected
    /// and the run continues.
    pub fn step(&mut self, job: Job) -> StrandResult<StepOutcome> {
        let Job { item, node } = job;
        let i = node.0 as usize;
        if self.crashed[i] {
            return Ok(StepOutcome::Reduced); // dead nodes accept no work
        }
        // Cancelled timers evaporate without consuming budget (see `run`).
        if let Some(("$timer", 2)) = item.goal.functor().map(|(n, a)| (n.as_str(), a)) {
            if !matches!(self.store.deref(&item.goal.goal_args()[0]), Term::Var(_)) {
                return Ok(StepOutcome::Reduced);
            }
        }
        if self.total_reductions >= self.config.max_reductions {
            if self.config.fail_fast {
                return Err(StrandError::BudgetExhausted {
                    reductions: self.total_reductions + 1,
                });
            }
            return Ok(StepOutcome::BudgetExhausted);
        }
        self.total_reductions += 1;
        self.current_node = node;
        self.extra_cost = 0;
        let start = self.nodes[i].clock.max(item.ready_at);
        self.nodes[i].clock = start;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Reduce {
                time: start,
                node,
                pid: item.pid,
                goal: goal_text(&item.goal),
            });
        }
        let step_result = self.reduce(item);
        let cost = (self.config.reduction_cost + self.extra_cost) * self.slowdown[i];
        self.nodes[i].clock = start + cost;
        self.metrics.busy[i] += cost;
        self.metrics.reductions[i] += 1;
        step_result?;
        if let Some(pf) = self.pending_foreign.take() {
            return Ok(StepOutcome::Foreign(pf));
        }
        Ok(StepOutcome::Reduced)
    }

    /// Finish a deferred pure foreign call: charge its virtual cost to the
    /// calling node and bind the output (waking waiters). `result` is what
    /// [`PendingForeign::compute`](crate::foreign::PendingForeign::compute)
    /// returned off-lock.
    pub fn complete_foreign(
        &mut self,
        pf: crate::foreign::PendingForeign,
        result: StrandResult<(Term, Time)>,
    ) -> StrandResult<()> {
        let i = pf.node.0 as usize;
        self.current_node = pf.node;
        self.extra_cost = 0;
        let start = self.nodes[i].clock;
        let name = pf.name.clone();
        let arity = pf.arity;
        let tracked = pf.tracked;
        let outcome = self.finish_foreign_call(&name, arity, result, pf.out)?;
        if tracked {
            self.metrics.track_done(pf.node);
        }
        let cost = self.extra_cost * self.slowdown[i];
        self.nodes[i].clock = start + cost;
        self.metrics.busy[i] += cost;
        match outcome {
            crate::foreign::ForeignOutcome::Done => Ok(()),
            crate::foreign::ForeignOutcome::Error(e) => self.record_error(e),
            _ => unreachable!("completion cannot suspend or defer"),
        }
    }

    /// One reduction step.
    fn reduce(&mut self, item: QItem) -> StrandResult<()> {
        let goal = self.store.deref(&item.goal);
        if let Term::Var(v) = goal {
            // A goal that is itself an unbound variable: a metacall waiting
            // for its goal term. Suspend until provided.
            self.suspend(item, vec![v]);
            return Ok(());
        }
        let Some((name, arity)) = goal.functor().map(|(n, a)| (n.clone(), a)) else {
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            return self.record_error(StrandError::NoMatchingRule { goal: resolved });
        };

        if !self.foreign.is_empty() {
            if let Some(outcome) = self.try_foreign(name.as_str(), &goal) {
                match outcome? {
                    crate::foreign::ForeignOutcome::Done => {
                        self.finish_tracked(&item);
                    }
                    crate::foreign::ForeignOutcome::Suspend(vars) => self.suspend(item, vars),
                    crate::foreign::ForeignOutcome::Error(e) => {
                        self.finish_tracked(&item);
                        self.record_error(e)?;
                    }
                    crate::foreign::ForeignOutcome::Deferred(mut pf) => {
                        // The goal finishes at completion time, not now.
                        pf.tracked = item.tracked;
                        self.pending_foreign = Some(pf);
                    }
                }
                return Ok(());
            }
        }

        if is_builtin(name.as_str(), arity) {
            match self.exec_builtin(name.as_str(), &goal)? {
                BuiltinOutcome::Done => {
                    self.finish_tracked(&item);
                }
                BuiltinOutcome::Suspend(vars) => self.suspend(item, vars),
                BuiltinOutcome::Error(e) => {
                    self.finish_tracked(&item);
                    self.record_error(e)?;
                }
            }
            return Ok(());
        }

        let program = Arc::clone(&self.program);
        let Some(proc) = program.get(name.as_str(), arity) else {
            self.finish_tracked(&item);
            return self.record_error(StrandError::UndefinedProcedure {
                name: name.as_str().to_string(),
                arity,
            });
        };

        // Try rules in order; collect suspension variables from rules that
        // might still become applicable.
        let rules: &[CompiledRule] = &proc.rules;
        let args: Vec<Term> = goal.goal_args().to_vec();
        let mut pending: Vec<VarId> = Vec::new();
        let mut otherwise: Option<&CompiledRule> = None;
        for rule in rules {
            if rule.otherwise {
                if otherwise.is_none() {
                    otherwise = Some(rule);
                }
                continue;
            }
            match self.try_rule(rule, &args)? {
                TryOutcome::Commit(frame) => {
                    self.commit(rule, frame)?;
                    self.finish_tracked(&item);
                    return Ok(());
                }
                TryOutcome::Fail => {}
                TryOutcome::Suspend(vs) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            // All non-otherwise rules failed definitively.
            if let Some(rule) = otherwise {
                match self.try_rule(rule, &args)? {
                    TryOutcome::Commit(frame) => {
                        self.commit(rule, frame)?;
                        self.finish_tracked(&item);
                        return Ok(());
                    }
                    TryOutcome::Suspend(vs) => {
                        self.suspend(item, vs);
                        return Ok(());
                    }
                    TryOutcome::Fail => {}
                }
            }
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            self.record_error(StrandError::NoMatchingRule { goal: resolved })
        } else {
            self.suspend(item, pending);
            Ok(())
        }
    }

    fn finish_tracked(&mut self, item: &QItem) {
        if item.tracked {
            self.metrics.track_done(self.current_node);
        }
    }

    fn try_rule(&mut self, rule: &CompiledRule, args: &[Term]) -> StrandResult<TryOutcome> {
        let mut frame = strand_core::Frame::with_locals(rule.n_locals);
        match match_args(args, &rule.head, &self.store, &mut frame) {
            MatchOutcome::Fail => return Ok(TryOutcome::Fail),
            MatchOutcome::Suspend(vs) => return Ok(TryOutcome::Suspend(vs)),
            MatchOutcome::Match => {}
        }
        let mut pending = Vec::new();
        for guard in &rule.guards {
            // A guard mentioning a variable not bound by the head can never
            // be decided; treat as failure (and surface a programmer error).
            let Some(gterm) = guard.instantiate_ro(&frame) else {
                return Ok(TryOutcome::Fail);
            };
            match strand_core::eval_guard(&gterm, &self.store)? {
                GuardOutcome::True => {}
                GuardOutcome::False => return Ok(TryOutcome::Fail),
                GuardOutcome::Suspend(vs) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            Ok(TryOutcome::Commit(frame))
        } else {
            Ok(TryOutcome::Suspend(pending))
        }
    }

    fn commit(&mut self, rule: &CompiledRule, mut frame: strand_core::Frame) -> StrandResult<()> {
        for call in &rule.body {
            let goal = call.goal.instantiate(&mut frame, &mut self.store);
            match &call.placement {
                None => {
                    let node = self.current_node;
                    self.spawn(goal, node);
                }
                Some(place) => {
                    let place_term = place.instantiate(&mut frame, &mut self.store);
                    match strand_core::eval_arith(&place_term, &self.store) {
                        Ok(strand_core::arith::Evaled::Num(n)) => {
                            let target = self.map_node(n.as_f64() as i64);
                            self.spawn(goal, target);
                        }
                        Ok(strand_core::arith::Evaled::Suspend(_)) => {
                            // Placement not yet known: defer via the internal
                            // `'$spawn_at'` builtin, which suspends.
                            let node = self.current_node;
                            self.spawn(Term::tuple("$spawn_at", vec![place_term, goal]), node);
                        }
                        Err(e) => self.record_error(e)?,
                    }
                }
            }
        }
        Ok(())
    }
}

enum TryOutcome {
    Commit(strand_core::Frame),
    Fail,
    Suspend(Vec<VarId>),
}

/// Outcome of the fault dice for one cross-node delivery.
pub(crate) enum Delivery {
    Deliver,
    Drop,
    Duplicate,
    Delay(Time),
}
