//! The parallel abstract machine.
//!
//! *"The state of a computation is represented by a pool of lightweight
//! processes. Execution proceeds by repeatedly selecting and attempting to
//! reduce processes in this pool"* (§2.1). This machine keeps one pool per
//! virtual node and drives them with a deterministic discrete-event
//! scheduler: each node has a local clock; a reduction costs
//! [`MachineConfig::reduction_cost`] ticks (plus explicit `work/1` costs);
//! anything crossing nodes — a spawned process, a stream message, a binding
//! that wakes a remote process — is delayed by [`MachineConfig::latency`].
//!
//! Determinism: the runnable node with the smallest next event time reduces
//! first (ties broken by node index, then process id), and randomness comes
//! only from the seeded `rand_num` primitive. Two runs with the same program,
//! goal and config are identical, metric for metric.

use crate::builtins::{is_builtin, BuiltinOutcome};
use crate::config::MachineConfig;
use crate::metrics::Metrics;
use crate::trace::{goal_text, TraceEvent};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use strand_core::{
    match_args, GuardOutcome, MatchOutcome, NodeId, SplitMix64, Store, StrandError, StrandResult,
    Term, Time, VarId,
};
use std::sync::Arc;
use strand_parse::{CompiledProgram, CompiledRule};

/// A queued (runnable) process.
#[derive(Clone, Debug)]
pub(crate) struct QItem {
    pub ready_at: Time,
    pub pid: u64,
    pub goal: Term,
    pub tracked: bool,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.pid == other.pid
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest item is on top.
        (other.ready_at, other.pid).cmp(&(self.ready_at, self.pid))
    }
}

/// A process suspended on a set of variables.
#[derive(Clone, Debug)]
struct Susp {
    goal: Term,
    node: NodeId,
    vars: Vec<VarId>,
    tracked: bool,
}

struct Node {
    clock: Time,
    queue: BinaryHeap<QItem>,
}

/// The write end of a stream (see `strand-core::Term::Port`).
#[derive(Clone, Debug)]
pub(crate) struct PortState {
    pub owner: NodeId,
    pub tail: VarId,
}

/// Why the machine stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// Every process reduced to completion.
    Completed,
    /// No runnable processes remain, but some are suspended forever — normal
    /// for server networks that idle awaiting messages (quiescence), a bug
    /// for programs expected to deliver results.
    Quiescent { suspended: usize },
}

/// Result of a run: status, metrics and collected `print/1` output.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub status: RunStatus,
    pub metrics: Metrics,
    pub output: Vec<String>,
    /// Runtime errors when `fail_fast` is off (empty otherwise).
    pub errors: Vec<(Time, StrandError)>,
    /// Goals still suspended at quiescence (resolved snapshots, capped).
    pub suspended_goals: Vec<Term>,
    /// Scheduler trace (empty unless `record_trace` was set).
    pub trace: Vec<TraceEvent>,
}

/// The abstract machine.
pub struct Machine {
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) config: MachineConfig,
    pub(crate) store: Store,
    nodes: Vec<Node>,
    suspended: HashMap<u64, Susp>,
    pub(crate) ports: Vec<PortState>,
    pub(crate) rng: SplitMix64,
    pub(crate) metrics: Metrics,
    next_pid: u64,
    pub(crate) output: Vec<String>,
    errors: Vec<(Time, StrandError)>,
    total_reductions: u64,
    /// Node currently reducing (valid inside a reduction step).
    pub(crate) current_node: NodeId,
    /// Extra virtual-time cost accumulated by builtins (work/1) during the
    /// current reduction.
    pub(crate) extra_cost: Time,
    /// Foreign (native Rust) procedures — the multilingual approach of
    /// §2.1; see [`crate::foreign`].
    pub(crate) foreign: crate::foreign::ForeignRegistry,
    trace: Vec<TraceEvent>,
}

impl Machine {
    /// Build a machine for a compiled program.
    pub fn new(program: CompiledProgram, config: MachineConfig) -> Machine {
        let n = config.nodes as usize;
        Machine {
            rng: SplitMix64::new(config.seed),
            metrics: Metrics::new(n),
            nodes: (0..n)
                .map(|_| Node {
                    clock: 0,
                    queue: BinaryHeap::new(),
                })
                .collect(),
            suspended: HashMap::new(),
            ports: Vec::new(),
            store: Store::new(),
            next_pid: 0,
            output: Vec::new(),
            errors: Vec::new(),
            total_reductions: 0,
            current_node: NodeId(0),
            extra_cost: 0,
            foreign: crate::foreign::ForeignRegistry::default(),
            trace: Vec::new(),
            program: Arc::new(program),
            config,
        }
    }

    /// Access the store (for seeding goals and reading results).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (goal construction).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Map a 1-based language node number onto an internal node id.
    pub(crate) fn map_node(&self, j: i64) -> NodeId {
        let v = self.config.nodes as i64;
        NodeId((((j - 1) % v + v) % v) as u32)
    }

    fn fresh_pid(&mut self) -> u64 {
        self.next_pid += 1;
        self.next_pid
    }

    /// Enqueue a goal on a node at the given ready time.
    pub(crate) fn enqueue(&mut self, goal: Term, node: NodeId, ready_at: Time) {
        let tracked = goal
            .functor()
            .is_some_and(|(name, _)| self.config.tracked.contains(name.as_str()));
        if tracked {
            self.metrics.track_spawn(node);
        }
        let pid = self.fresh_pid();
        let nq = &mut self.nodes[node.0 as usize];
        nq.queue.push(QItem {
            ready_at,
            pid,
            goal,
            tracked,
        });
        let qlen = nq.queue.len();
        if qlen > self.metrics.peak_queue[node.0 as usize] {
            self.metrics.peak_queue[node.0 as usize] = qlen;
        }
    }

    /// Spawn a goal from the current reduction (applies cross-node latency
    /// and message accounting).
    pub(crate) fn spawn(&mut self, goal: Term, target: NodeId) {
        let now = self.nodes[self.current_node.0 as usize].clock;
        let ready_at = if target == self.current_node {
            now
        } else {
            self.metrics.count_message(self.current_node, target);
            self.metrics.remote_spawns += 1;
            now + self.config.latency
        };
        if self.config.record_trace {
            self.trace.push(TraceEvent::Spawn {
                time: now,
                from: self.current_node,
                to: target,
                goal: goal_text(&goal),
            });
        }
        self.enqueue(goal, target, ready_at);
    }

    /// Bind a variable from the current reduction, waking any waiters.
    pub(crate) fn bind_now(&mut self, v: VarId, value: Term) -> StrandResult<()> {
        let now = self.nodes[self.current_node.0 as usize].clock;
        let node = self.current_node;
        let waiters = self.store.bind(v, value, now, node)?;
        self.wake(waiters, now, node);
        Ok(())
    }

    fn wake(&mut self, waiters: Vec<u64>, bind_time: Time, binder: NodeId) {
        for pid in waiters {
            let Some(susp) = self.suspended.remove(&pid) else {
                continue; // already woken through another variable
            };
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            let arrival = if susp.node == binder {
                bind_time
            } else {
                self.metrics.count_message(binder, susp.node);
                bind_time + self.config.latency
            };
            if self.config.record_trace {
                self.trace.push(TraceEvent::Wake {
                    time: arrival,
                    binder,
                    node: susp.node,
                    pid,
                });
            }
            let nq = &mut self.nodes[susp.node.0 as usize];
            nq.queue.push(QItem {
                ready_at: arrival,
                pid,
                goal: susp.goal,
                tracked: susp.tracked,
            });
            let qlen = nq.queue.len();
            if qlen > self.metrics.peak_queue[susp.node.0 as usize] {
                self.metrics.peak_queue[susp.node.0 as usize] = qlen;
            }
        }
    }

    fn suspend(&mut self, item: QItem, vars: Vec<VarId>) {
        debug_assert!(!vars.is_empty(), "suspending on empty var set");
        let pid = item.pid;
        // Defensive: if any variable got bound in the meantime (cannot
        // happen today — reduction is atomic — but cheap to guard), retry.
        let mut registered = Vec::new();
        for v in &vars {
            if self.store.add_waiter(*v, pid) {
                registered.push(*v);
            } else {
                for r in &registered {
                    self.store.remove_waiter(*r, pid);
                }
                let node = self.current_node;
                let now = self.nodes[node.0 as usize].clock;
                self.enqueue(item.goal, node, now);
                return;
            }
        }
        self.metrics.suspensions += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Suspend {
                time: self.nodes[self.current_node.0 as usize].clock,
                node: self.current_node,
                pid,
                goal: goal_text(&item.goal),
                vars: vars.len(),
            });
        }
        self.suspended.insert(
            pid,
            Susp {
                goal: item.goal,
                node: self.current_node,
                vars,
                tracked: item.tracked,
            },
        );
    }

    fn record_error(&mut self, e: StrandError) -> StrandResult<()> {
        if self.config.fail_fast {
            return Err(e);
        }
        let now = self.nodes[self.current_node.0 as usize].clock;
        self.errors.push((now, e));
        Ok(())
    }

    /// Run until no process is runnable. The initial goal must have been
    /// enqueued (see [`Machine::start`] or the `run_*` helpers in the crate
    /// root).
    pub fn run(&mut self) -> StrandResult<RunReport> {
        loop {
            // Pick the node with the earliest next event.
            let mut best: Option<(Time, usize)> = None;
            for (i, n) in self.nodes.iter().enumerate() {
                if let Some(top) = n.queue.peek() {
                    let key = n.clock.max(top.ready_at);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
            }
            let Some((start, i)) = best else { break };
            let item = self.nodes[i].queue.pop().expect("peeked nonempty queue");
            self.total_reductions += 1;
            if self.total_reductions > self.config.max_reductions {
                return Err(StrandError::BudgetExhausted {
                    reductions: self.total_reductions,
                });
            }
            self.current_node = NodeId(i as u32);
            self.extra_cost = 0;
            self.nodes[i].clock = start;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Reduce {
                    time: start,
                    node: self.current_node,
                    pid: item.pid,
                    goal: goal_text(&item.goal),
                });
            }
            let step_result = self.reduce(item);
            let cost = self.config.reduction_cost + self.extra_cost;
            self.nodes[i].clock = start + cost;
            self.metrics.busy[i] += cost;
            self.metrics.reductions[i] += 1;
            step_result?;
        }
        self.metrics.makespan = self.nodes.iter().map(|n| n.clock).max().unwrap_or(0);
        self.metrics.total_reductions = self.total_reductions;
        let status = if self.suspended.is_empty() {
            RunStatus::Completed
        } else {
            RunStatus::Quiescent {
                suspended: self.suspended.len(),
            }
        };
        let mut suspended_goals: Vec<Term> = self
            .suspended
            .values()
            .take(16)
            .map(|s| self.store.resolve(&s.goal))
            .collect();
        suspended_goals.sort_by_key(|t| t.to_string());
        Ok(RunReport {
            status,
            metrics: self.metrics.clone(),
            output: self.output.clone(),
            errors: std::mem::take(&mut self.errors),
            suspended_goals,
            trace: std::mem::take(&mut self.trace),
        })
    }

    /// Enqueue `goal` on node 1 at time 0.
    pub fn start(&mut self, goal: Term) {
        self.enqueue(goal, NodeId(0), 0);
    }

    /// One reduction step.
    fn reduce(&mut self, item: QItem) -> StrandResult<()> {
        let goal = self.store.deref(&item.goal);
        if let Term::Var(v) = goal {
            // A goal that is itself an unbound variable: a metacall waiting
            // for its goal term. Suspend until provided.
            self.suspend(item, vec![v]);
            return Ok(());
        }
        let Some((name, arity)) = goal.functor().map(|(n, a)| (n.clone(), a)) else {
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            return self.record_error(StrandError::NoMatchingRule { goal: resolved });
        };

        if !self.foreign.is_empty() {
            if let Some(outcome) = self.try_foreign(name.as_str(), &goal) {
                match outcome? {
                    crate::foreign::ForeignOutcome::Done => {
                        self.finish_tracked(&item);
                    }
                    crate::foreign::ForeignOutcome::Suspend(vars) => self.suspend(item, vars),
                    crate::foreign::ForeignOutcome::Error(e) => {
                        self.finish_tracked(&item);
                        self.record_error(e)?;
                    }
                }
                return Ok(());
            }
        }

        if is_builtin(name.as_str(), arity) {
            match self.exec_builtin(name.as_str(), &goal)? {
                BuiltinOutcome::Done => {
                    self.finish_tracked(&item);
                }
                BuiltinOutcome::Suspend(vars) => self.suspend(item, vars),
                BuiltinOutcome::Error(e) => {
                    self.finish_tracked(&item);
                    self.record_error(e)?;
                }
            }
            return Ok(());
        }

        let program = Arc::clone(&self.program);
        let Some(proc) = program.get(name.as_str(), arity) else {
            self.finish_tracked(&item);
            return self.record_error(StrandError::UndefinedProcedure {
                name: name.as_str().to_string(),
                arity,
            });
        };

        // Try rules in order; collect suspension variables from rules that
        // might still become applicable.
        let rules: &[CompiledRule] = &proc.rules;
        let args: Vec<Term> = goal.goal_args().to_vec();
        let mut pending: Vec<VarId> = Vec::new();
        let mut otherwise: Option<&CompiledRule> = None;
        for rule in rules {
            if rule.otherwise {
                if otherwise.is_none() {
                    otherwise = Some(rule);
                }
                continue;
            }
            match self.try_rule(rule, &args)? {
                TryOutcome::Commit(frame) => {
                    self.commit(rule, frame)?;
                    self.finish_tracked(&item);
                    return Ok(());
                }
                TryOutcome::Fail => {}
                TryOutcome::Suspend(vs) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            // All non-otherwise rules failed definitively.
            if let Some(rule) = otherwise {
                match self.try_rule(rule, &args)? {
                    TryOutcome::Commit(frame) => {
                        self.commit(rule, frame)?;
                        self.finish_tracked(&item);
                        return Ok(());
                    }
                    TryOutcome::Suspend(vs) => {
                        self.suspend(item, vs);
                        return Ok(());
                    }
                    TryOutcome::Fail => {}
                }
            }
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            self.record_error(StrandError::NoMatchingRule { goal: resolved })
        } else {
            self.suspend(item, pending);
            Ok(())
        }
    }

    fn finish_tracked(&mut self, item: &QItem) {
        if item.tracked {
            self.metrics.track_done(self.current_node);
        }
    }

    fn try_rule(&mut self, rule: &CompiledRule, args: &[Term]) -> StrandResult<TryOutcome> {
        let mut frame = strand_core::Frame::with_locals(rule.n_locals);
        match match_args(args, &rule.head, &self.store, &mut frame) {
            MatchOutcome::Fail => return Ok(TryOutcome::Fail),
            MatchOutcome::Suspend(vs) => return Ok(TryOutcome::Suspend(vs)),
            MatchOutcome::Match => {}
        }
        let mut pending = Vec::new();
        for guard in &rule.guards {
            // A guard mentioning a variable not bound by the head can never
            // be decided; treat as failure (and surface a programmer error).
            let Some(gterm) = guard.instantiate_ro(&frame) else {
                return Ok(TryOutcome::Fail);
            };
            match strand_core::eval_guard(&gterm, &self.store)? {
                GuardOutcome::True => {}
                GuardOutcome::False => return Ok(TryOutcome::Fail),
                GuardOutcome::Suspend(vs) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            Ok(TryOutcome::Commit(frame))
        } else {
            Ok(TryOutcome::Suspend(pending))
        }
    }

    fn commit(&mut self, rule: &CompiledRule, mut frame: strand_core::Frame) -> StrandResult<()> {
        for call in &rule.body {
            let goal = call.goal.instantiate(&mut frame, &mut self.store);
            match &call.placement {
                None => {
                    let node = self.current_node;
                    self.spawn(goal, node);
                }
                Some(place) => {
                    let place_term = place.instantiate(&mut frame, &mut self.store);
                    match strand_core::eval_arith(&place_term, &self.store) {
                        Ok(strand_core::arith::Evaled::Num(n)) => {
                            let target = self.map_node(n.as_f64() as i64);
                            self.spawn(goal, target);
                        }
                        Ok(strand_core::arith::Evaled::Suspend(_)) => {
                            // Placement not yet known: defer via the internal
                            // `'$spawn_at'` builtin, which suspends.
                            let node = self.current_node;
                            self.spawn(
                                Term::tuple("$spawn_at", vec![place_term, goal]),
                                node,
                            );
                        }
                        Err(e) => self.record_error(e)?,
                    }
                }
            }
        }
        Ok(())
    }
}

enum TryOutcome {
    Commit(strand_core::Frame),
    Fail,
    Suspend(Vec<VarId>),
}
