//! The parallel abstract machine.
//!
//! *"The state of a computation is represented by a pool of lightweight
//! processes. Execution proceeds by repeatedly selecting and attempting to
//! reduce processes in this pool"* (§2.1). This machine keeps one pool per
//! virtual node and drives them with a deterministic discrete-event
//! scheduler: each node has a local clock; a reduction costs
//! [`MachineConfig::reduction_cost`] ticks (plus explicit `work/1` costs);
//! anything crossing nodes — a spawned process, a stream message, a binding
//! that wakes a remote process — is delayed by [`MachineConfig::latency`].
//!
//! Determinism: the runnable node with the smallest next event time reduces
//! first (ties broken by node index, then process id), and randomness comes
//! only from the seeded `rand_num` primitive. Two runs with the same program,
//! goal and config are identical, metric for metric.

use crate::builtins::{is_builtin, BuiltinOutcome};
use crate::config::{ExecMode, MachineConfig, TimerSource};
use crate::exec::{self, ExecProgram, Scratch};
use crate::metrics::Metrics;
use crate::trace::{goal_text, TraceEvent};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use strand_core::{
    match_args, Atom, FxHashMap, GuardOutcome, MatchOutcome, NodeId, SharedStore, SharedStoreView,
    SplitMix64, Store, StoreOps, StrandError, StrandResult, Term, Time, VarId, Waiter,
};
use strand_parse::{CompiledProgram, CompiledRule};

/// A queued (runnable) process.
#[derive(Clone, Debug)]
pub(crate) struct QItem {
    pub ready_at: Time,
    pub pid: u64,
    pub goal: Term,
    pub tracked: bool,
    /// Session region this process allocates store variables under
    /// (0 = the untracked boot/batch region). Spawns inherit the spawning
    /// reduction's region, so a whole request's dataflow is reclaimable
    /// when its session closes.
    pub region: u32,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.pid == other.pid
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest item is on top.
        (other.ready_at, other.pid).cmp(&(self.ready_at, self.pid))
    }
}

/// One runnable process bound for a node. In sharded execution these travel
/// between workers inside [`Routed`] batches; each worker inserts arriving
/// jobs straight into the per-node heaps it owns.
#[derive(Debug)]
pub struct Job {
    pub(crate) item: QItem,
    pub(crate) node: NodeId,
}

impl Job {
    /// The node this process must run on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// Bits of a process id reserved for the owning worker's index in sharded
/// execution. Worker `w` allocates pids starting at `w << WORKER_PID_SHIFT`,
/// so any worker can route a wake-up from the pid alone — and worker 0's pids
/// coincide with the deterministic scheduler's, which is what makes 1-thread
/// parallel runs bit-identical to the simulator.
pub const WORKER_PID_SHIFT: u32 = 48;

/// A cross-worker event produced by one shard for another. Senders tag every
/// routed event against the shared in-flight gate before it leaves the
/// machine (timers excepted); receivers apply it via [`Machine::absorb`].
#[derive(Debug)]
pub enum Routed {
    /// A newly runnable process for a node another worker owns.
    Job(Job),
    /// A binding at `time` on `binder` woke a process another worker owns.
    Wake {
        pid: u64,
        time: Time,
        binder: NodeId,
    },
    /// A closed session's region must be swept on `worker`: the receiver
    /// tears out its suspensions tagged with `region` and reclaims its own
    /// store stripe. Carries no in-flight gate unit (reclamation is not
    /// program work); it still rides the quiescence token like any batch.
    Reclaim { region: u32, worker: usize },
}

impl Routed {
    /// Which worker must apply this event, given the routing rule
    /// `worker(node) = node mod threads` and pid-encoded suspension
    /// ownership.
    pub fn dest_worker(&self, threads: usize) -> usize {
        match self {
            Routed::Job(job) => job.node.0 as usize % threads,
            Routed::Wake { pid, .. } => (pid >> WORKER_PID_SHIFT) as usize,
            Routed::Reclaim { worker, .. } => *worker,
        }
    }
}

fn goal_is_timer(goal: &Term) -> bool {
    matches!(
        goal.functor().map(|(n, a)| (n.as_str(), a)),
        Some(("$timer", 2))
    )
}

/// Deep-substitute like [`StoreHandle::resolve`], but emit at most `budget`
/// term nodes, eliding anything deeper as the atom `'…'`.
///
/// The post-mortem suspended-goal diagnostic must never dominate shutdown:
/// a suspended goal can reference heavily shared structure (the Supervise
/// library's directory and wire records are the canonical case), and
/// expanding that DAG into a tree is exponential in run length. A capped
/// expansion keeps the report readable and `finalize_shard` O(1).
fn resolve_capped(store: &StoreHandle, t: &Term, budget: &mut u32) -> Term {
    if *budget == 0 {
        return Term::atom("…");
    }
    *budget -= 1;
    match store.deref(t) {
        Term::Tuple(name, args) => Term::tuple(
            name,
            args.iter()
                .map(|a| resolve_capped(store, a, budget))
                .collect(),
        ),
        Term::List(cell) => Term::cons(
            resolve_capped(store, &cell.0, budget),
            resolve_capped(store, &cell.1, budget),
        ),
        other => other,
    }
}

/// An `after_unless` deadline armed under [`TimerSource::WallClock`]
/// (`crate::config::TimerSource`): instead of enqueuing a lazy `'$timer'`
/// item, the machine records the deadline here for the parallel backend to
/// harvest (see [`Machine::take_wall_timers`]) into its timer wheel. When
/// the wheel fires the entry, the backend hands it back through
/// [`Machine::fire_wall_timer`], which enqueues a `'$timer!'` goal — a
/// *regular* (gate-counted) event, unlike `'$timer'` — so quiescence
/// accounting treats the fired deadline as ordinary in-flight work.
#[derive(Clone, Debug)]
pub struct WallTimer {
    /// Node the deadline was armed on; the fired goal runs there.
    pub node: NodeId,
    /// Virtual ticks to wait (the backend maps 1 tick to 1 ms).
    pub wait: Time,
    /// The unless-var: if bound before the deadline, the timer is cancelled.
    pub cancel: Term,
    /// The timeout var, bound to `timeout` when the deadline fires.
    pub timeout: Term,
    /// Session region the arming reduction ran under; the backend purges
    /// wheel entries when their region is reclaimed, so a fired timer can
    /// never touch a recycled slot.
    pub region: u32,
}

/// What [`Machine::drain_local`] left behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainState {
    /// No runnable work and no deferred timers: the shard is idle.
    Idle,
    /// Only deferred `'$timer'` deadlines remain. They may fire once the
    /// global in-flight gate reaches zero (see [`Machine::release_timers`]).
    TimersOnly,
    /// The step quantum expired with runnable work still queued.
    More,
    /// The shared reduction budget is exhausted (`fail_fast` off).
    Budget,
}

/// Store access for one machine: the deterministic scheduler owns a plain
/// [`Store`] outright; sharded workers share a lock-striped [`SharedStore`],
/// each allocating from its own stripe so variable creation is contention-free.
pub enum StoreHandle {
    Local(Store),
    Shared(SharedStoreView),
}

impl StoreHandle {
    /// Allocate a fresh unbound variable.
    pub fn new_var(&mut self) -> VarId {
        match self {
            StoreHandle::Local(s) => s.new_var(),
            StoreHandle::Shared(s) => StoreOps::new_var(s),
        }
    }

    /// Follow variable chains until a non-variable or unbound variable.
    pub fn deref(&self, t: &Term) -> Term {
        match self {
            StoreHandle::Local(s) => s.deref(t),
            StoreHandle::Shared(s) => StoreOps::deref(s, t),
        }
    }

    /// Deep-substitute bound variables throughout a term.
    pub fn resolve(&self, t: &Term) -> Term {
        match self {
            StoreHandle::Local(s) => s.resolve(t),
            StoreHandle::Shared(s) => StoreOps::resolve(s, t),
        }
    }

    /// Bind `v`, returning the waiters to wake.
    pub fn bind(
        &mut self,
        v: VarId,
        value: Term,
        time: Time,
        node: NodeId,
    ) -> StrandResult<Vec<Waiter>> {
        match self {
            StoreHandle::Local(s) => s.bind(v, value, time, node),
            StoreHandle::Shared(s) => s.shared().bind(v, value, time, node),
        }
    }

    /// Register a waiter; `false` if the variable is already bound.
    pub fn add_waiter(&mut self, v: VarId, w: Waiter) -> bool {
        match self {
            StoreHandle::Local(s) => s.add_waiter(v, w),
            StoreHandle::Shared(s) => s.shared().add_waiter(v, w),
        }
    }

    /// Drop a waiter registration (no-op if absent).
    pub fn remove_waiter(&mut self, v: VarId, w: Waiter) {
        match self {
            StoreHandle::Local(s) => s.remove_waiter(v, w),
            StoreHandle::Shared(s) => s.shared().remove_waiter(v, w),
        }
    }

    /// Set the session region subsequent allocations are tagged with
    /// (0 = untracked boot/batch region).
    pub fn set_region(&mut self, region: u32) {
        match self {
            StoreHandle::Local(s) => s.set_region(region),
            StoreHandle::Shared(s) => s.set_region(region),
        }
    }

    /// Variables currently allocated (the live slot-table size; reclaimed
    /// slots are reused, so a bounded resident process keeps this bounded).
    pub fn len(&self) -> usize {
        match self {
            StoreHandle::Local(s) => s.len(),
            StoreHandle::Shared(s) => s.shared().len(),
        }
    }

    /// True when no variable has ever been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl StoreOps for StoreHandle {
    fn deref(&self, t: &Term) -> Term {
        StoreHandle::deref(self, t)
    }
    fn resolve(&self, t: &Term) -> Term {
        StoreHandle::resolve(self, t)
    }
    fn new_var(&mut self) -> VarId {
        StoreHandle::new_var(self)
    }
}

/// Port table access: owned outright by the simulator, shared behind one
/// mutex by sharded workers. The lock covers only id allocation and the
/// tail swap; the actual tail binding happens outside it, so concurrent
/// appends each link a distinct cons cell and the stream stays linear.
pub(crate) enum PortsHandle {
    Local(Vec<PortState>),
    Shared(Arc<Mutex<Vec<PortState>>>),
}

impl PortsHandle {
    /// Register a port, returning its id.
    pub(crate) fn push(&mut self, p: PortState) -> u32 {
        match self {
            PortsHandle::Local(v) => {
                v.push(p);
                (v.len() - 1) as u32
            }
            PortsHandle::Shared(m) => {
                let mut v = m.lock().expect("ports mutex poisoned");
                v.push(p);
                (v.len() - 1) as u32
            }
        }
    }

    /// The node a port lives on (fixed at creation).
    pub(crate) fn owner(&self, id: u32) -> NodeId {
        match self {
            PortsHandle::Local(v) => v[id as usize].owner,
            PortsHandle::Shared(m) => m.lock().expect("ports mutex poisoned")[id as usize].owner,
        }
    }

    /// Atomically replace the port's tail variable, returning the old tail.
    pub(crate) fn swap_tail(&mut self, id: u32, new_tail: VarId) -> VarId {
        match self {
            PortsHandle::Local(v) => std::mem::replace(&mut v[id as usize].tail, new_tail),
            PortsHandle::Shared(m) => {
                let mut v = m.lock().expect("ports mutex poisoned");
                std::mem::replace(&mut v[id as usize].tail, new_tail)
            }
        }
    }
}

/// Atomic counters one sharded run's workers share.
#[derive(Clone)]
struct WorldHooks {
    /// Global reduction count: the budget is a property of the run, not of
    /// any one worker.
    budget: Arc<AtomicU64>,
    /// Global sequence counter backing `unique_id/1`.
    seq: Arc<AtomicU64>,
    /// Queued-or-in-flight non-timer work across all shards. While nonzero,
    /// `'$timer'` deadlines are deferred: a timeout fires only once the
    /// value it guards has had every chance to arrive (lazy-timer rule).
    regular: Arc<AtomicU64>,
}

/// Shared state backing one multi-worker run: the striped variable store,
/// the port table, and the run-global counters. Cheap to clone; every worker
/// machine holds the same underlying `Arc`s.
#[derive(Clone)]
pub struct SharedWorld {
    store: Arc<SharedStore>,
    ports: Arc<Mutex<Vec<PortState>>>,
    hooks: WorldHooks,
}

impl SharedWorld {
    /// Shared state for `threads` workers (one store stripe per worker).
    pub fn new(threads: usize) -> SharedWorld {
        SharedWorld {
            store: Arc::new(SharedStore::new(threads.max(1) as u32)),
            ports: Arc::new(Mutex::new(Vec::new())),
            hooks: WorldHooks {
                budget: Arc::new(AtomicU64::new(0)),
                seq: Arc::new(AtomicU64::new(0)),
                regular: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Queued or in-flight non-timer work across all workers. Zero means any
    /// deferred timers may legally fire.
    pub fn regular_pending(&self) -> u64 {
        self.hooks.regular.load(AtomicOrdering::SeqCst)
    }

    /// Reductions performed so far across all workers.
    pub fn reductions(&self) -> u64 {
        self.hooks.budget.load(AtomicOrdering::Relaxed)
    }
}

/// One worker's slice of a run report, merged by [`merge_shard_reports`].
pub struct ShardReport {
    pub metrics: Metrics,
    pub output: Vec<String>,
    pub errors: Vec<(Time, StrandError)>,
    pub suspended_goals: Vec<Term>,
    pub suspended: usize,
    pub trace: Vec<TraceEvent>,
    /// Nodes of this shard dead at the end of the run (1-based; nonempty
    /// only under chaos injection).
    pub crashed_nodes: Vec<u32>,
    /// Goals lost with this shard's crashed nodes.
    pub dead: usize,
    /// Resolved snapshots of lost goals (capped at 16 per shard).
    pub dead_goals: Vec<Term>,
}

/// A process suspended on a set of variables.
#[derive(Clone, Debug)]
struct Susp {
    goal: Term,
    node: NodeId,
    vars: Vec<VarId>,
    tracked: bool,
    /// Session region the process runs under (see [`QItem::region`]); a
    /// session sweep tears out suspensions with a matching tag.
    region: u32,
}

struct Node {
    clock: Time,
    queue: BinaryHeap<QItem>,
}

/// The write end of a stream (see `strand-core::Term::Port`).
#[derive(Clone, Debug)]
pub(crate) struct PortState {
    pub owner: NodeId,
    pub tail: VarId,
}

/// Why the machine stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// Every process reduced to completion.
    Completed,
    /// No runnable processes remain, but some are suspended forever — normal
    /// for server networks that idle awaiting messages (quiescence), a bug
    /// for programs expected to deliver results.
    Quiescent { suspended: usize },
    /// Quiescent *and* at least one node is dead: surviving processes are
    /// suspended on bindings that can no longer arrive. `dead` counts the
    /// goals lost with the crashed nodes (snapshots in
    /// [`RunReport::dead_goals`]); `crashed_nodes` is 1-based.
    Partitioned {
        suspended: usize,
        dead: usize,
        crashed_nodes: Vec<u32>,
    },
    /// The reduction budget ran out with `fail_fast` off: the report carries
    /// everything computed so far (partial metrics and output).
    Truncated { reductions: u64 },
}

/// Result of a run: status, metrics and collected `print/1` output.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub status: RunStatus,
    pub metrics: Metrics,
    pub output: Vec<String>,
    /// Runtime errors when `fail_fast` is off (empty otherwise).
    pub errors: Vec<(Time, StrandError)>,
    /// Goals still suspended at quiescence (resolved snapshots, capped).
    pub suspended_goals: Vec<Term>,
    /// Goals lost with crashed nodes (resolved snapshots, capped at 16).
    pub dead_goals: Vec<Term>,
    /// Scheduler trace (empty unless `record_trace` was set).
    pub trace: Vec<TraceEvent>,
}

/// The abstract machine.
pub struct Machine {
    pub(crate) program: Arc<CompiledProgram>,
    /// Lowered (direct-threaded) form of `program` for the compiled tier;
    /// rebuilt whenever the program is replaced (see [`Machine::new_worker`]).
    exec: Arc<ExecProgram>,
    /// Reusable hot-path buffers: rule frame, pending-variable sets and the
    /// match stack. One per machine, so each shard of a parallel run owns
    /// its own and no reduction allocates on the commit path.
    scratch: Scratch,
    pub(crate) config: MachineConfig,
    pub(crate) store: StoreHandle,
    nodes: Vec<Node>,
    suspended: FxHashMap<u64, Susp>,
    pub(crate) ports: PortsHandle,
    pub(crate) rng: SplitMix64,
    pub(crate) metrics: Metrics,
    next_pid: u64,
    pub(crate) output: Vec<String>,
    errors: Vec<(Time, StrandError)>,
    total_reductions: u64,
    /// Node currently reducing (valid inside a reduction step).
    pub(crate) current_node: NodeId,
    /// Extra virtual-time cost accumulated by builtins (work/1) during the
    /// current reduction.
    pub(crate) extra_cost: Time,
    /// Foreign (native Rust) procedures — the multilingual approach of
    /// §2.1; see [`crate::foreign`].
    pub(crate) foreign: crate::foreign::ForeignRegistry,
    trace: Vec<TraceEvent>,
    /// Fault injection state (see [`crate::config::FaultPlan`]). The fault
    /// RNG is separate from `rng` so faults never perturb `rand_num`.
    fault_rng: SplitMix64,
    crashed: Vec<bool>,
    /// Scheduled crashes not yet fired, as (node, time).
    pending_crashes: Vec<(NodeId, Time)>,
    /// Per-node reduction-cost multiplier (≥ 1; straggler injection).
    slowdown: Vec<u64>,
    /// Resolved snapshots of goals lost with crashed nodes (capped at 16).
    dead_goals: Vec<Term>,
    dead_count: usize,
    /// Counter backing the `unique_id/1` builtin (sequence numbers) when the
    /// machine runs alone; sharded workers use the shared `hooks.seq`.
    pub(crate) seq_counter: u64,
    /// `Some((worker_index, threads))` in sharded execution: this machine
    /// owns exactly the nodes with `node mod threads == worker_index`, and
    /// events for other shards accumulate in `outbox`.
    shard: Option<(usize, usize)>,
    /// Cross-shard events awaiting routing (sharded execution only).
    outbox: Vec<Routed>,
    /// Run-global atomic counters (sharded execution only).
    hooks: Option<WorldHooks>,
    /// `'$timer'` deadlines parked while the global in-flight gate is
    /// nonzero (see [`Machine::release_timers`]).
    deferred_timers: Vec<(NodeId, QItem)>,
    /// Wall-clock deadlines armed since the last harvest
    /// (`TimerSource::WallClock` only; see [`Machine::take_wall_timers`]).
    pending_wall_timers: Vec<WallTimer>,
    /// Region the currently reducing process runs under; spawns from the
    /// reduction inherit it (0 outside any session — the batch default).
    current_region: u32,
}

impl Machine {
    /// Build a machine for a compiled program.
    pub fn new(program: CompiledProgram, config: MachineConfig) -> Machine {
        let n = config.nodes as usize;
        let map = |j: u32| {
            let v = config.nodes as i64;
            NodeId((((j as i64 - 1) % v + v) % v) as u32)
        };
        let mut pending_crashes: Vec<(NodeId, Time)> = config
            .faults
            .crashes
            .iter()
            .map(|&(j, t)| (map(j), t))
            .collect();
        // Earliest first; ties broken by node index for determinism.
        pending_crashes.sort_by_key(|&(node, t)| (t, node.0));
        let mut slowdown = vec![1u64; n];
        for &(j, f) in &config.faults.slowdowns {
            slowdown[map(j).0 as usize] = f.max(1);
        }
        let program = Arc::new(program);
        let exec = Arc::new(ExecProgram::lower(&program));
        Machine {
            rng: SplitMix64::new(config.seed),
            fault_rng: SplitMix64::new(config.faults.seed),
            crashed: vec![false; n],
            pending_crashes,
            slowdown,
            dead_goals: Vec::new(),
            dead_count: 0,
            seq_counter: 0,
            metrics: Metrics::new(n),
            nodes: (0..n)
                .map(|_| Node {
                    clock: 0,
                    queue: BinaryHeap::new(),
                })
                .collect(),
            suspended: FxHashMap::default(),
            ports: PortsHandle::Local(Vec::new()),
            store: StoreHandle::Local(Store::new()),
            next_pid: 0,
            output: Vec::new(),
            errors: Vec::new(),
            total_reductions: 0,
            current_node: NodeId(0),
            extra_cost: 0,
            foreign: crate::foreign::ForeignRegistry::default(),
            trace: Vec::new(),
            program,
            exec,
            scratch: Scratch::default(),
            config,
            shard: None,
            outbox: Vec::new(),
            hooks: None,
            deferred_timers: Vec::new(),
            pending_wall_timers: Vec::new(),
            current_region: 0,
        }
    }

    /// Build one worker's machine for a sharded run: same program and config
    /// as the simulator would use, but variables, ports, budget and sequence
    /// numbers live in the shared `world`, and process ids are offset so
    /// every worker allocates from a disjoint range (see
    /// [`WORKER_PID_SHIFT`]).
    pub fn new_worker(
        program: Arc<CompiledProgram>,
        config: MachineConfig,
        world: &SharedWorld,
        idx: usize,
        threads: usize,
    ) -> Machine {
        debug_assert!(idx < threads);
        let mut m = Machine::new(CompiledProgram::default(), config);
        m.program = program;
        // Re-lower for the worker's actual program (the placeholder above
        // lowered an empty one). Lowering is linear in program size and runs
        // once per worker, far off the hot path.
        m.exec = Arc::new(ExecProgram::lower(&m.program));
        m.store = StoreHandle::Shared(SharedStoreView::new(Arc::clone(&world.store), idx as u32));
        m.ports = PortsHandle::Shared(Arc::clone(&world.ports));
        m.next_pid = (idx as u64) << WORKER_PID_SHIFT;
        // Worker 0 keeps the configured seed so 1-thread runs draw the same
        // `rand_num` sequence as the simulator; other workers decorrelate.
        m.rng = SplitMix64::new(
            m.config
                .seed
                .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        m.shard = Some((idx, threads));
        m.hooks = Some(world.hooks.clone());
        m
    }

    /// Access the store (for seeding goals and reading results).
    pub fn store(&self) -> &StoreHandle {
        &self.store
    }

    /// Mutable store access (goal construction).
    pub fn store_mut(&mut self) -> &mut StoreHandle {
        &mut self.store
    }

    /// Map a 1-based language node number onto an internal node id.
    pub(crate) fn map_node(&self, j: i64) -> NodeId {
        let v = self.config.nodes as i64;
        NodeId((((j - 1) % v + v) % v) as u32)
    }

    fn fresh_pid(&mut self) -> u64 {
        self.next_pid += 1;
        self.next_pid
    }

    /// Record a trace event (no-op unless tracing is on — callers check).
    pub(crate) fn push_trace(&mut self, event: TraceEvent) {
        self.trace.push(event);
    }

    /// Enqueue a goal on a node at the given ready time.
    pub(crate) fn enqueue(&mut self, goal: Term, node: NodeId, ready_at: Time) {
        if self.crashed[node.0 as usize] {
            return; // dead nodes accept no work
        }
        // The empty-set check short-circuits the functor walk and hash on
        // the common untracked configuration (every spawn passes through
        // here).
        let tracked = !self.config.tracked.is_empty()
            && goal
                .functor()
                .is_some_and(|(name, _)| self.config.tracked.contains(name.as_str()));
        // In sharded execution, tracked-process gauges are per-owner: the
        // receiving worker counts the spawn when the job arrives (see
        // `absorb`), so spawn/done pairs always land on the same machine.
        if tracked
            && self
                .shard
                .is_none_or(|(me, threads)| node.0 as usize % threads == me)
        {
            self.metrics.track_spawn(node);
        }
        let pid = self.fresh_pid();
        self.push_item(
            node,
            QItem {
                ready_at,
                pid,
                goal,
                tracked,
                region: self.current_region,
            },
        );
    }

    /// Hand a runnable process to the scheduler: the per-node heap when this
    /// machine owns the node, the outbox otherwise (sharded execution). Every
    /// non-timer item raises the global in-flight gate; the count drops when
    /// the item is reduced or discarded, so a zero gate means no regular work
    /// exists anywhere — the condition for deferred timers to fire.
    fn push_item(&mut self, node: NodeId, item: QItem) {
        if let Some((me, threads)) = self.shard {
            if !goal_is_timer(&item.goal) {
                self.gate_add(1);
            }
            if node.0 as usize % threads != me {
                self.outbox.push(Routed::Job(Job { item, node }));
                return;
            }
        }
        self.insert_local(node, item);
    }

    /// Insert into the node's heap without gate accounting (the sender
    /// already counted routed items).
    fn insert_local(&mut self, node: NodeId, item: QItem) {
        let nq = &mut self.nodes[node.0 as usize];
        nq.queue.push(item);
        let qlen = nq.queue.len();
        if qlen > self.metrics.peak_queue[node.0 as usize] {
            self.metrics.peak_queue[node.0 as usize] = qlen;
        }
    }

    fn gate_add(&self, n: u64) {
        if let Some(h) = &self.hooks {
            h.regular.fetch_add(n, AtomicOrdering::SeqCst);
        }
    }

    fn gate_sub(&self, n: u64) {
        if let Some(h) = &self.hooks {
            let prev = h.regular.fetch_sub(n, AtomicOrdering::SeqCst);
            debug_assert!(prev >= n, "in-flight gate underflow");
        }
    }

    /// Reductions performed so far — run-global in sharded execution.
    fn budget_spent(&self) -> u64 {
        match &self.hooks {
            Some(h) => h.budget.load(AtomicOrdering::Relaxed),
            None => self.total_reductions,
        }
    }

    fn charge_reduction(&mut self) {
        self.total_reductions += 1;
        if let Some(h) = &self.hooks {
            h.budget.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    /// Next `unique_id/1` value — run-global in sharded execution.
    pub(crate) fn next_unique_id(&mut self) -> u64 {
        match &self.hooks {
            Some(h) => h.seq.fetch_add(1, AtomicOrdering::Relaxed) + 1,
            None => {
                self.seq_counter += 1;
                self.seq_counter
            }
        }
    }

    /// The executing node's clock (valid inside a reduction step).
    pub(crate) fn now(&self) -> Time {
        self.nodes[self.current_node.0 as usize].clock
    }

    /// Is the node dead per the fault plan?
    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.0 as usize]
    }

    /// Roll the fault dice for one cross-node delivery. Quiet edges consume
    /// no randomness, so an empty plan leaves runs bit-identical.
    pub(crate) fn edge_delivery(&mut self, from: NodeId, to: NodeId) -> Delivery {
        let ef = self.config.faults.edge_faults(from.0 + 1, to.0 + 1);
        if ef.is_quiet() {
            return Delivery::Deliver;
        }
        let roll = self.fault_rng.next_f64();
        if roll < ef.drop_prob {
            Delivery::Drop
        } else if roll < ef.drop_prob + ef.dup_prob {
            Delivery::Duplicate
        } else if roll < ef.drop_prob + ef.dup_prob + ef.delay_prob {
            Delivery::Delay(ef.delay_ticks)
        } else {
            Delivery::Deliver
        }
    }

    /// Record a lost delivery (fault injection or dead target).
    pub(crate) fn record_drop(&mut self, to: NodeId, goal: &Term) {
        self.metrics.msgs_dropped += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Drop {
                time: self.now(),
                from: self.current_node,
                to,
                goal: goal_text(goal),
            });
        }
    }

    /// Spawn a goal from the current reduction (applies cross-node latency,
    /// message accounting, and — for cross-node spawns — fault injection).
    pub(crate) fn spawn(&mut self, goal: Term, target: NodeId) {
        let now = self.now();
        if self.is_crashed(target) {
            // Delivery to a dead node is lost silently, like the machine it
            // models; the metrics and trace still see it.
            if target != self.current_node {
                self.metrics.count_message(self.current_node, target);
            }
            self.record_drop(target, &goal);
            return;
        }
        let mut duplicate_at = None;
        let ready_at = if target == self.current_node {
            now
        } else {
            self.metrics.count_message(self.current_node, target);
            self.metrics.remote_spawns += 1;
            let arrival = now + self.config.latency;
            match self.edge_delivery(self.current_node, target) {
                Delivery::Deliver => arrival,
                Delivery::Drop => {
                    self.record_drop(target, &goal);
                    return;
                }
                Delivery::Duplicate => {
                    self.metrics.msgs_duplicated += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Duplicate {
                            time: now,
                            from: self.current_node,
                            to: target,
                            goal: goal_text(&goal),
                        });
                    }
                    duplicate_at = Some(arrival + self.config.latency);
                    arrival
                }
                Delivery::Delay(extra) => {
                    self.metrics.msgs_delayed += 1;
                    arrival + extra
                }
            }
        };
        if self.config.record_trace {
            self.trace.push(TraceEvent::Spawn {
                time: now,
                from: self.current_node,
                to: target,
                goal: goal_text(&goal),
            });
        }
        if let Some(at) = duplicate_at {
            self.enqueue(goal.clone(), target, at);
        }
        self.enqueue(goal, target, ready_at);
    }

    /// Bind a variable from the current reduction, waking any waiters.
    pub(crate) fn bind_now(&mut self, v: VarId, value: Term) -> StrandResult<()> {
        let now = self.nodes[self.current_node.0 as usize].clock;
        let node = self.current_node;
        let waiters = self.store.bind(v, value, now, node)?;
        self.wake(waiters, now, node);
        Ok(())
    }

    fn wake(&mut self, waiters: Vec<u64>, bind_time: Time, binder: NodeId) {
        for pid in waiters {
            if let Some((me, _)) = self.shard {
                if (pid >> WORKER_PID_SHIFT) as usize != me {
                    // Another worker owns the suspension: route the wake-up.
                    // It counts against the gate until the owner applies it
                    // (see `apply_wake`), so quiescence cannot be announced
                    // with the wake still in flight.
                    self.gate_add(1);
                    self.outbox.push(Routed::Wake {
                        pid,
                        time: bind_time,
                        binder,
                    });
                    continue;
                }
            }
            let Some(susp) = self.suspended.remove(&pid) else {
                continue; // already woken through another variable
            };
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            let arrival = if susp.node == binder {
                bind_time
            } else {
                self.metrics.count_message(binder, susp.node);
                bind_time + self.config.latency
            };
            if self.config.record_trace {
                self.trace.push(TraceEvent::Wake {
                    time: arrival,
                    binder,
                    node: susp.node,
                    pid,
                });
            }
            self.push_item(
                susp.node,
                QItem {
                    ready_at: arrival,
                    pid,
                    goal: susp.goal,
                    tracked: susp.tracked,
                    region: susp.region,
                },
            );
        }
    }

    fn suspend(&mut self, item: QItem, vars: Vec<VarId>) {
        debug_assert!(!vars.is_empty(), "suspending on empty var set");
        let pid = item.pid;
        // Defensive: if any variable got bound in the meantime (cannot
        // happen today — reduction is atomic — but cheap to guard), roll
        // back the waiters registered so far and retry the goal.
        for (i, v) in vars.iter().enumerate() {
            if !self.store.add_waiter(*v, pid) {
                for r in &vars[..i] {
                    self.store.remove_waiter(*r, pid);
                }
                let node = self.current_node;
                let now = self.nodes[node.0 as usize].clock;
                self.enqueue(item.goal, node, now);
                return;
            }
        }
        self.metrics.suspensions += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Suspend {
                time: self.nodes[self.current_node.0 as usize].clock,
                node: self.current_node,
                pid,
                goal: goal_text(&item.goal),
                vars: vars.len(),
            });
        }
        self.suspended.insert(
            pid,
            Susp {
                goal: item.goal,
                node: self.current_node,
                vars,
                tracked: item.tracked,
                region: item.region,
            },
        );
    }

    fn record_error(&mut self, e: StrandError) -> StrandResult<()> {
        if self.config.fail_fast {
            return Err(e);
        }
        let now = self.nodes[self.current_node.0 as usize].clock;
        self.errors.push((now, e));
        Ok(())
    }

    /// Run until no process is runnable. The initial goal must have been
    /// enqueued (see [`Machine::start`] or the `run_*` helpers in the crate
    /// root).
    pub fn run(&mut self) -> StrandResult<RunReport> {
        let mut truncated = false;
        loop {
            // Pick the node with the earliest next event.
            let mut best: Option<(Time, usize)> = None;
            for (i, n) in self.nodes.iter().enumerate() {
                if let Some(top) = n.queue.peek() {
                    let key = n.clock.max(top.ready_at);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
            }
            // Fire any scheduled crash due before the next event, so crashes
            // hit idle (suspended) nodes too, in global virtual-time order.
            if let Some(&(node, at)) = self.pending_crashes.first() {
                if best.is_none_or(|(bk, _)| at <= bk) {
                    self.pending_crashes.remove(0);
                    self.apply_crash(node, at);
                    continue;
                }
            }
            let Some((start, i)) = best else { break };
            if self.total_reductions >= self.config.max_reductions {
                if self.config.fail_fast {
                    return Err(StrandError::BudgetExhausted {
                        reductions: self.total_reductions + 1,
                    });
                }
                self.errors.push((
                    start,
                    StrandError::BudgetExhausted {
                        reductions: self.total_reductions,
                    },
                ));
                truncated = true;
                break;
            }
            let item = self.nodes[i].queue.pop().expect("peeked nonempty queue");
            // A '$timer'(Cancel, T) whose cancel flag is already bound
            // evaporates without advancing the clock or consuming budget:
            // cancelled timeouts must not stretch the makespan.
            if let Some(("$timer", 2)) = item.goal.functor().map(|(n, a)| (n.as_str(), a)) {
                if !matches!(self.store.deref(&item.goal.goal_args()[0]), Term::Var(_)) {
                    self.metrics.timers_cancelled += 1;
                    continue;
                }
            }
            self.total_reductions += 1;
            self.current_node = NodeId(i as u32);
            self.extra_cost = 0;
            self.nodes[i].clock = start;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Reduce {
                    time: start,
                    node: self.current_node,
                    pid: item.pid,
                    goal: goal_text(&item.goal),
                });
            }
            let step_result = self.reduce(item);
            let cost = (self.config.reduction_cost + self.extra_cost) * self.slowdown[i];
            self.nodes[i].clock = start + cost;
            self.metrics.busy[i] += cost;
            self.metrics.reductions[i] += 1;
            step_result?;
        }
        Ok(self.build_report(truncated))
    }

    /// Snapshot the final report. Public for execution backends that drive
    /// the machine step-by-step instead of calling [`Machine::run`].
    pub fn build_report(&mut self, truncated: bool) -> RunReport {
        self.metrics.makespan = self.nodes.iter().map(|n| n.clock).max().unwrap_or(0);
        self.metrics.total_reductions = self.total_reductions;
        let crashed_nodes: Vec<u32> = self
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        let status = if truncated {
            RunStatus::Truncated {
                reductions: self.total_reductions,
            }
        } else if !crashed_nodes.is_empty() && !self.suspended.is_empty() {
            // Survivors are stuck on bindings a dead node will never make.
            RunStatus::Partitioned {
                suspended: self.suspended.len(),
                dead: self.dead_count,
                crashed_nodes,
            }
        } else if self.suspended.is_empty() {
            RunStatus::Completed
        } else {
            RunStatus::Quiescent {
                suspended: self.suspended.len(),
            }
        };
        let mut suspended_goals: Vec<Term> = self
            .suspended
            .values()
            .take(16)
            .map(|s| self.store.resolve(&s.goal))
            .collect();
        suspended_goals.sort_by_key(|t| t.to_string());
        let mut dead_goals = self.dead_goals.clone();
        dead_goals.sort_by_key(|t| t.to_string());
        RunReport {
            status,
            metrics: self.metrics.clone(),
            output: self.output.clone(),
            errors: std::mem::take(&mut self.errors),
            suspended_goals,
            dead_goals,
            trace: std::mem::take(&mut self.trace),
        }
    }

    /// Kill a node: drop its queue, tear out its suspended goals (they will
    /// never wake), and remember diagnostics snapshots.
    fn apply_crash(&mut self, node: NodeId, at: Time) {
        let i = node.0 as usize;
        if self.crashed[i] {
            return;
        }
        self.crashed[i] = true;
        // The node's clock stays where computation stopped: a crash is not
        // work, and must not stretch the makespan.
        let lost_queue = self.nodes[i].queue.len();
        let lost: Vec<QItem> = self.nodes[i].queue.drain().collect();
        for item in &lost {
            if item.tracked {
                self.metrics.track_done(node);
            }
            if self.dead_goals.len() < 16 {
                self.dead_goals.push(self.store.resolve(&item.goal));
            }
        }
        self.dead_count += lost_queue;
        let dead_pids: Vec<u64> = self
            .suspended
            .iter()
            .filter(|(_, s)| s.node == node)
            .map(|(&pid, _)| pid)
            .collect();
        let lost_suspended = dead_pids.len();
        for pid in dead_pids {
            let susp = self.suspended.remove(&pid).expect("collected above");
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            if susp.tracked {
                self.metrics.track_done(node);
            }
            if self.dead_goals.len() < 16 {
                self.dead_goals.push(self.store.resolve(&susp.goal));
            }
        }
        self.dead_count += lost_suspended;
        self.metrics.nodes_crashed += 1;
        if self.config.record_trace {
            self.trace.push(TraceEvent::Crash {
                time: at,
                node,
                lost_queue,
                lost_suspended,
            });
        }
    }

    /// Enqueue `goal` on node 1 at time 0.
    pub fn start(&mut self, goal: Term) {
        self.enqueue(goal, NodeId(0), 0);
    }

    // --- Service shell (resident machines; see DESIGN.md §9) --------------

    /// Build the ingress machine for a resident sharded run: it shares the
    /// run's world (store stripe 0, ports, gates) but owns **no** nodes —
    /// its shard index equals `threads`, so `node mod threads` never matches
    /// and every injected goal lands in the outbox for routing. It never
    /// reduces or suspends, so its pids (minted above every worker's range)
    /// never appear in store waiter lists; receivers re-mint pids on
    /// absorption as usual.
    pub fn new_ingress(
        program: Arc<CompiledProgram>,
        config: MachineConfig,
        world: &SharedWorld,
        threads: usize,
    ) -> Machine {
        let mut m = Machine::new(CompiledProgram::default(), config);
        m.program = program;
        m.exec = Arc::new(ExecProgram::lower(&m.program));
        m.store = StoreHandle::Shared(SharedStoreView::new(Arc::clone(&world.store), 0));
        m.ports = PortsHandle::Shared(Arc::clone(&world.ports));
        m.next_pid = (threads as u64) << WORKER_PID_SHIFT;
        m.shard = Some((threads, threads));
        m.hooks = Some(world.hooks.clone());
        m
    }

    /// Set the session region for subsequent goal construction and
    /// injection: variables allocated while building the request term and
    /// everything its reductions spawn are tagged for
    /// [`reclaim_session`](Machine::reclaim_session).
    pub fn set_session_region(&mut self, region: u32) {
        self.current_region = region;
        self.store.set_region(region);
    }

    /// Inject an external goal onto 1-based node `node` of a resident
    /// machine. On an ingress machine the goal goes to the outbox (flush it
    /// to the workers); on the simulator it enqueues directly — call
    /// [`run`](Machine::run) again to process it (the scheduler loop is
    /// re-entrant: suspensions and the store persist across calls).
    pub fn inject(&mut self, goal: Term, node: i64) {
        let target = self.map_node(node);
        self.enqueue(goal, target, 0);
    }

    /// Sweep a closed session: tear out this machine's suspensions tagged
    /// with `region` (their wakes can never matter again under the
    /// session-locality contract) and reclaim the region's slots in the
    /// store this machine allocates into (its own stripe when sharded).
    /// Returns the number of store slots freed.
    pub fn reclaim_session(&mut self, region: u32) -> usize {
        debug_assert!(region != 0, "region 0 is the untracked batch region");
        let pids: Vec<u64> = self
            .suspended
            .iter()
            .filter(|(_, s)| s.region == region)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in pids {
            let susp = self.suspended.remove(&pid).expect("collected above");
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            if susp.tracked {
                self.metrics.track_done(susp.node);
            }
        }
        let freed = match &mut self.store {
            StoreHandle::Local(s) => s.reclaim_region(region),
            StoreHandle::Shared(s) => {
                let owner = s.owner();
                s.shared().reclaim_region_stripe(owner, region)
            }
        };
        self.metrics.vars_reclaimed += freed as u64;
        freed
    }

    /// Count one idle park (a resident worker reached global quiescence and
    /// parked instead of exiting).
    pub fn note_idle_park(&mut self) {
        self.metrics.idle_parks += 1;
    }

    /// Mutable metrics access (the service shell counts sessions and
    /// admissions on the machine that fronts them).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Live size of the store this machine allocates into (all stripes when
    /// sharded) — the soak tier's bounded-growth probe.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    // --- Sharded execution -----------------------------------------------
    //
    // The multi-threaded backend (crate `strand-parallel`) runs one Machine
    // per worker. Each worker owns the nodes with `node mod threads == idx`
    // outright — run queues, suspension tables, clocks — and shares only the
    // striped variable store, the port table and three atomic counters.
    // Workers alternate `drain_local` (reduce owned work; no lock wider than
    // a store stripe is ever held) with routing the outbox to peers and
    // absorbing their batches. There is no global machine lock.

    /// Drain the cross-shard events produced since the last call.
    pub fn take_outbox(&mut self) -> Vec<Routed> {
        std::mem::take(&mut self.outbox)
    }

    /// Processes currently suspended on unbound variables.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    /// Record the budget-exhausted error once (the worker that first
    /// observes [`DrainState::Budget`] calls this).
    pub fn note_truncated(&mut self) {
        let now = self.nodes[self.current_node.0 as usize].clock;
        let reductions = self.budget_spent();
        self.errors
            .push((now, StrandError::BudgetExhausted { reductions }));
    }

    /// Does this machine own `node`'s run queue and suspensions?
    fn owns(&self, node: NodeId) -> bool {
        match self.shard {
            Some((me, threads)) => node.0 as usize % threads == me,
            None => true,
        }
    }

    /// Apply a batch of events routed from other workers.
    pub fn absorb(&mut self, batch: Vec<Routed>) {
        for event in batch {
            match event {
                Routed::Job(job) => {
                    let Job { mut item, node } = job;
                    debug_assert!(self.owns(node), "job routed to wrong shard");
                    // Re-mint the pid into this worker's range: the pid
                    // prefix is the wake-routing key, so if this job later
                    // suspends, the binder's wake must route *here* — under
                    // the sender's pid it would route to the sender, miss,
                    // and strand the process. Re-minting also gives
                    // chaos-duplicated jobs distinct identities.
                    item.pid = self.fresh_pid();
                    if item.tracked {
                        self.metrics.track_spawn(node);
                    }
                    self.insert_local(node, item);
                }
                Routed::Wake { pid, time, binder } => self.apply_wake(pid, time, binder),
                Routed::Reclaim { region, .. } => {
                    self.reclaim_session(region);
                }
            }
        }
    }

    /// Apply a routed wake-up for a pid this worker owns. A stale wake-up —
    /// the process already woke through another variable — is dropped; its
    /// gate reservation is still settled.
    fn apply_wake(&mut self, pid: u64, bind_time: Time, binder: NodeId) {
        self.gate_sub(1); // the wake has arrived
        let Some(susp) = self.suspended.remove(&pid) else {
            return;
        };
        for v in &susp.vars {
            self.store.remove_waiter(*v, pid);
        }
        let arrival = if susp.node == binder {
            bind_time
        } else {
            self.metrics.count_message(binder, susp.node);
            bind_time + self.config.latency
        };
        if self.config.record_trace {
            self.trace.push(TraceEvent::Wake {
                time: arrival,
                binder,
                node: susp.node,
                pid,
            });
        }
        self.push_item(
            susp.node,
            QItem {
                ready_at: arrival,
                pid,
                goal: susp.goal,
                tracked: susp.tracked,
                region: susp.region,
            },
        );
    }

    /// Reduce up to `max_steps` owned processes, using the same
    /// earliest-event selection as [`Machine::run`] restricted to this
    /// shard's nodes. Cancelled `'$timer'` deadlines evaporate as in `run`;
    /// live ones are parked while the global in-flight gate is nonzero, so a
    /// timeout only fires once the value it guards has had every chance to
    /// arrive.
    pub fn drain_local(&mut self, max_steps: u32) -> StrandResult<DrainState> {
        let (me, threads) = self.shard.expect("drain_local requires a sharded machine");
        let mut steps = 0u32;
        loop {
            if steps >= max_steps {
                return Ok(DrainState::More);
            }
            let mut best: Option<(Time, usize)> = None;
            for i in (me..self.nodes.len()).step_by(threads) {
                if let Some(top) = self.nodes[i].queue.peek() {
                    let key = self.nodes[i].clock.max(top.ready_at);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
            }
            let Some((start, i)) = best else {
                return Ok(if self.deferred_timers.is_empty() {
                    DrainState::Idle
                } else {
                    DrainState::TimersOnly
                });
            };
            if self.budget_spent() >= self.config.max_reductions {
                if self.config.fail_fast {
                    return Err(StrandError::BudgetExhausted {
                        reductions: self.budget_spent() + 1,
                    });
                }
                return Ok(DrainState::Budget);
            }
            let item = self.nodes[i].queue.pop().expect("peeked nonempty queue");
            let regular = !goal_is_timer(&item.goal);
            if !regular {
                if !matches!(self.store.deref(&item.goal.goal_args()[0]), Term::Var(_)) {
                    self.metrics.timers_cancelled += 1;
                    continue; // cancelled: evaporate without budget or clock
                }
                if self
                    .hooks
                    .as_ref()
                    .is_some_and(|h| h.regular.load(AtomicOrdering::SeqCst) > 0)
                {
                    self.deferred_timers.push((NodeId(i as u32), item));
                    continue;
                }
            }
            self.charge_reduction();
            self.current_node = NodeId(i as u32);
            self.extra_cost = 0;
            self.nodes[i].clock = start;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Reduce {
                    time: start,
                    node: self.current_node,
                    pid: item.pid,
                    goal: goal_text(&item.goal),
                });
            }
            let step_result = self.reduce(item);
            let cost = (self.config.reduction_cost + self.extra_cost) * self.slowdown[i];
            self.nodes[i].clock = start + cost;
            self.metrics.busy[i] += cost;
            self.metrics.reductions[i] += 1;
            if regular {
                self.gate_sub(1);
            }
            step_result?;
            steps += 1;
        }
    }

    /// True when at least one `'$timer'` deadline is parked waiting for the
    /// global in-flight gate to settle.
    pub fn has_deferred_timers(&self) -> bool {
        !self.deferred_timers.is_empty()
    }

    /// Does this machine arm `after_unless` deadlines on the wall clock?
    /// True only for sharded machines configured with
    /// [`TimerSource::WallClock`] — the deterministic simulator always runs
    /// lazy virtual deadlines, whatever the config says.
    pub(crate) fn wall_timers_active(&self) -> bool {
        self.config.timer_source == TimerSource::WallClock && self.shard.is_some()
    }

    /// Record a wall-clock deadline for the backend to harvest
    /// (`after_unless` under [`TimerSource::WallClock`]).
    pub(crate) fn arm_wall_timer(&mut self, node: NodeId, wait: Time, cancel: Term, timeout: Term) {
        self.pending_wall_timers.push(WallTimer {
            node,
            wait,
            cancel,
            timeout,
            region: self.current_region,
        });
    }

    /// Harvest the wall-clock deadlines armed since the last call. The
    /// parallel backend calls this after every drain and registers the
    /// entries into its timer wheel.
    pub fn take_wall_timers(&mut self) -> Vec<WallTimer> {
        std::mem::take(&mut self.pending_wall_timers)
    }

    /// True once the unless-var of an armed deadline has been bound — the
    /// wheel prunes such entries instead of firing them. Any machine sharing
    /// the store can answer this, whichever shard armed the timer.
    pub fn cancel_is_bound(&self, cancel: &Term) -> bool {
        !matches!(self.store.deref(cancel), Term::Var(_))
    }

    /// Deliver a due wheel entry back into the shard layer: enqueue a
    /// `'$timer!'` goal on the entry's node. Unlike `'$timer'`, the fired
    /// goal is *regular* work — [`Machine::push_item`] raises the in-flight
    /// gate for it, and it routes through the outbox as an ordinary
    /// [`Routed::Job`] when another worker owns the node — so the
    /// mint-before-send token protocol sees a fired deadline exactly as it
    /// sees any other cross-shard event. Firing at a crashed node is a
    /// silent no-op (the deadline died with the shard; supervision recovers
    /// through monitors on live nodes).
    pub fn fire_wall_timer(&mut self, timer: WallTimer) {
        let WallTimer {
            node,
            cancel,
            timeout,
            region,
            ..
        } = timer;
        if self.crashed[node.0 as usize] {
            return;
        }
        let pid = self.fresh_pid();
        self.push_item(
            node,
            QItem {
                ready_at: 0,
                pid,
                goal: Term::tuple("$timer!", vec![cancel, timeout]),
                tracked: false,
                region,
            },
        );
    }

    /// Re-queue parked `'$timer'` deadlines. The worker calls this when the
    /// global in-flight gate reads zero; a timer whose cancel flag arrived
    /// in the meantime evaporates on the next drain.
    pub fn release_timers(&mut self) {
        for (node, item) in std::mem::take(&mut self.deferred_timers) {
            self.insert_local(node, item);
        }
    }

    /// Drop all queued work (run aborted or truncated), settling gate and
    /// tracked-process accounting so merged metrics stay consistent.
    pub fn discard_local(&mut self) {
        for i in 0..self.nodes.len() {
            let items: Vec<QItem> = self.nodes[i].queue.drain().collect();
            for item in items {
                if !goal_is_timer(&item.goal) {
                    self.gate_sub(1);
                }
                if item.tracked {
                    self.metrics.track_done(NodeId(i as u32));
                }
            }
        }
        self.deferred_timers.clear();
        self.pending_wall_timers.clear();
    }

    /// Discard a routed batch unapplied (run aborted): settle the gate.
    pub fn discard_routed(&mut self, batch: Vec<Routed>) {
        for event in batch {
            match event {
                Routed::Job(job) => {
                    if !goal_is_timer(&job.item.goal) {
                        self.gate_sub(1);
                    }
                }
                Routed::Wake { .. } => self.gate_sub(1),
                // Reclaims carry no gate unit; on an aborted run the region
                // simply stays allocated (the process is exiting anyway).
                Routed::Reclaim { .. } => {}
            }
        }
    }

    // --- Wall-clock chaos injection (see `config::ChaosPlan`) ------------
    //
    // These methods implement the shard-level faults the parallel backend's
    // workers inject. They mirror the virtual-time fault layer's accounting
    // exactly: gate units settle so surviving shards' deferred timers can
    // fire, tracked-process gauges stay balanced, and drops/dups land in
    // the same metrics counters the simulator uses.

    /// Kill this worker's whole shard: every owned node crashes at once, as
    /// [`Machine::apply_crash`] does one node at a time — run queues dropped
    /// (settling the in-flight gate), suspensions torn out of the shared
    /// store, nodes marked crashed so nothing re-enqueues. The caller must
    /// keep draining the worker's channel afterwards (discarding deliveries
    /// via [`Machine::chaos_absorb_dead`]) or peers would park forever.
    pub fn chaos_kill(&mut self) {
        let mut killed = 0usize;
        let mut lost_queue = 0usize;
        for i in 0..self.nodes.len() {
            if !self.owns(NodeId(i as u32)) || self.crashed[i] {
                continue;
            }
            self.crashed[i] = true;
            killed += 1;
            let node = NodeId(i as u32);
            let items: Vec<QItem> = self.nodes[i].queue.drain().collect();
            for item in &items {
                if !goal_is_timer(&item.goal) {
                    self.gate_sub(1);
                }
                if item.tracked {
                    self.metrics.track_done(node);
                }
                if self.dead_goals.len() < 16 {
                    self.dead_goals.push(self.store.resolve(&item.goal));
                }
            }
            lost_queue += items.len();
            self.dead_count += items.len();
        }
        // Parked '$timer' deadlines hold no gate units; they die silently.
        // Unharvested wall deadlines likewise: entries already in the wheel
        // fire into the dead shard and are discarded there.
        self.deferred_timers.clear();
        self.pending_wall_timers.clear();
        // Every suspension in this table lives on an owned node.
        let lost_suspended = self.suspended.len();
        let susps: Vec<(u64, Susp)> = self.suspended.drain().collect();
        for (pid, susp) in susps {
            for v in &susp.vars {
                self.store.remove_waiter(*v, pid);
            }
            if susp.tracked {
                self.metrics.track_done(susp.node);
            }
            if self.dead_goals.len() < 16 {
                self.dead_goals.push(self.store.resolve(&susp.goal));
            }
        }
        self.dead_count += lost_suspended;
        self.metrics.nodes_crashed += killed as u64;
        self.metrics.shards_killed += 1;
        if self.config.record_trace {
            let time = self.nodes.iter().map(|n| n.clock).max().unwrap_or(0);
            self.trace.push(TraceEvent::ShardKill {
                time,
                worker: self.shard.map_or(0, |(me, _)| me),
                nodes: killed,
                lost_queue,
                lost_suspended,
            });
        }
    }

    /// Discard a batch delivered to a killed shard: settle the gate exactly
    /// as [`Machine::discard_routed`], counting the lost remote spawns as
    /// dropped deliveries. Wakes to a dead shard are stale notifications —
    /// their suspensions died with the shard — and are settled silently.
    pub fn chaos_absorb_dead(&mut self, batch: Vec<Routed>) {
        let jobs = batch.iter().filter(|r| matches!(r, Routed::Job(_))).count();
        self.metrics.msgs_dropped += jobs as u64;
        self.discard_routed(batch);
    }

    /// Chaos drop: strip the remote spawns out of an outgoing batch
    /// (settling their gate units) and leave the wakes intact — binding
    /// notifications are never dropped, mirroring the virtual-time contract
    /// that faults model the network, not the shared store (DESIGN.md §8).
    /// Returns how many spawns were removed.
    pub fn chaos_drop_jobs(&mut self, batch: &mut Vec<Routed>) -> usize {
        let mut kept = Vec::with_capacity(batch.len());
        let mut dropped = 0usize;
        for event in batch.drain(..) {
            match event {
                Routed::Job(job) => {
                    if !goal_is_timer(&job.item.goal) {
                        self.gate_sub(1);
                    }
                    dropped += 1;
                }
                // Wakes and reclaims are never dropped: faults model the
                // network's spawn traffic, not the shared store or the
                // service shell's control plane.
                other => kept.push(other),
            }
        }
        *batch = kept;
        if dropped > 0 {
            self.metrics.msgs_dropped += dropped as u64;
            self.metrics.batches_dropped += 1;
        }
        dropped
    }

    /// Chaos duplicate: clone the remote spawns of an outgoing batch into a
    /// second batch, raising the gate for each copy (the receiver settles
    /// it when the copy reduces or is discarded). Wakes are never
    /// duplicated. The receiver re-mints pids on absorption, so each copy
    /// gets its own process identity. Empty when the batch has no spawns.
    pub fn chaos_duplicate_jobs(&mut self, batch: &[Routed]) -> Vec<Routed> {
        let mut dup = Vec::new();
        for event in batch {
            if let Routed::Job(job) = event {
                if !goal_is_timer(&job.item.goal) {
                    self.gate_add(1);
                }
                dup.push(Routed::Job(Job {
                    item: job.item.clone(),
                    node: job.node,
                }));
            }
        }
        if !dup.is_empty() {
            self.metrics.msgs_duplicated += dup.len() as u64;
            self.metrics.batches_duplicated += 1;
        }
        dup
    }

    /// Record injected throttle stall time (chaos straggler injection).
    pub fn note_throttle(&mut self, ns: u64) {
        self.metrics.throttle_ns += ns;
    }

    /// Snapshot this worker's slice of the final report.
    pub fn finalize_shard(&mut self) -> ShardReport {
        self.metrics.makespan = self.nodes.iter().map(|n| n.clock).max().unwrap_or(0);
        self.metrics.total_reductions = self.total_reductions;
        let mut suspended_goals: Vec<Term> = self
            .suspended
            .values()
            .take(16)
            .map(|s| {
                let mut budget = 256u32;
                resolve_capped(&self.store, &s.goal, &mut budget)
            })
            .collect();
        suspended_goals.sort_by_key(|t| t.to_string());
        let crashed_nodes: Vec<u32> = self
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        ShardReport {
            metrics: self.metrics.clone(),
            output: std::mem::take(&mut self.output),
            errors: std::mem::take(&mut self.errors),
            suspended_goals,
            suspended: self.suspended.len(),
            trace: std::mem::take(&mut self.trace),
            crashed_nodes,
            dead: self.dead_count,
            dead_goals: std::mem::take(&mut self.dead_goals),
        }
    }

    /// One reduction step.
    fn reduce(&mut self, item: QItem) -> StrandResult<()> {
        // Allocations made by this reduction (and spawns from it) belong to
        // the process's session region. Batch runs stay on region 0 and
        // never take this branch.
        if self.current_region != item.region {
            self.current_region = item.region;
            self.store.set_region(item.region);
        }
        let goal = self.store.deref(&item.goal);
        if let Term::Var(v) = goal {
            // A goal that is itself an unbound variable: a metacall waiting
            // for its goal term. Suspend until provided.
            self.suspend(item, vec![v]);
            return Ok(());
        }
        let Some((name, arity)) = goal.functor().map(|(n, a)| (n.clone(), a)) else {
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            return self.record_error(StrandError::NoMatchingRule { goal: resolved });
        };

        if !self.foreign.is_empty() {
            if let Some(outcome) = self.try_foreign(name.as_str(), &goal) {
                // Dispatch-level errors go through `record_error` like the
                // outcome-level ones: with `fail_fast` off they must be
                // *collected*, not propagated — a resident service survives
                // a bad request instead of tearing down (DESIGN.md §9).
                let outcome = match outcome {
                    Ok(o) => o,
                    Err(e) => {
                        self.finish_tracked(&item);
                        return self.record_error(e);
                    }
                };
                match outcome {
                    crate::foreign::ForeignOutcome::Done => {
                        self.finish_tracked(&item);
                    }
                    crate::foreign::ForeignOutcome::Suspend(vars) => self.suspend(item, vars),
                    crate::foreign::ForeignOutcome::Error(e) => {
                        self.finish_tracked(&item);
                        self.record_error(e)?;
                    }
                }
                return Ok(());
            }
        }

        if is_builtin(name.as_str(), arity) {
            let outcome = match self.exec_builtin(name.as_str(), &goal) {
                Ok(o) => o,
                Err(e) => {
                    self.finish_tracked(&item);
                    return self.record_error(e);
                }
            };
            match outcome {
                BuiltinOutcome::Done => {
                    self.finish_tracked(&item);
                }
                BuiltinOutcome::Suspend(vars) => self.suspend(item, vars),
                BuiltinOutcome::Error(e) => {
                    self.finish_tracked(&item);
                    self.record_error(e)?;
                }
            }
            return Ok(());
        }

        match self.config.exec {
            ExecMode::Compiled => self.reduce_rules_compiled(item, goal, name, arity),
            ExecMode::Interpreted => self.reduce_rules_interpreted(item, goal, name, arity),
        }
    }

    /// Rule dispatch through the compiled tier (`ExecMode::Compiled`, the
    /// default): direct-threaded match ops, first-argument clause indexing
    /// and fused match-then-instantiate (see [`crate::exec`]). Must stay
    /// observably identical to [`Machine::reduce_rules_interpreted`].
    fn reduce_rules_compiled(
        &mut self,
        item: QItem,
        goal: Term,
        name: Atom,
        arity: usize,
    ) -> StrandResult<()> {
        let exec = Arc::clone(&self.exec);
        let Some(proc) = exec.get(name.as_str(), arity) else {
            self.finish_tracked(&item);
            return self.record_error(StrandError::UndefinedProcedure {
                name: name.as_str().to_string(),
                arity,
            });
        };
        self.metrics.compiled_reductions += 1;
        let args: &[Term] = goal.goal_args();
        // One up-front deref of the first argument feeds every index probe.
        let arg0 = if proc.indexed {
            args.first().map(|a| self.store.deref(a))
        } else {
            None
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.pending.clear();
        let mut committed: Option<&exec::ExecRule> = None;
        let mut hard_err: Option<StrandError> = None;
        for rule in proc.rules.iter() {
            if let (Some(key), Some(a0)) = (&rule.key, &arg0) {
                if !key.admits(a0) {
                    self.metrics.index_hits += 1;
                    continue;
                }
                self.metrics.index_misses += 1;
            }
            self.metrics.rules_tried += 1;
            let tried = match &self.store {
                StoreHandle::Local(s) => exec::try_rule(rule, args, s, &mut scratch),
                StoreHandle::Shared(s) => exec::try_rule(rule, args, s, &mut scratch),
            };
            match tried {
                Err(e) => {
                    hard_err = Some(e);
                    break;
                }
                Ok(exec::TryResult::Commit) => {
                    committed = Some(rule);
                    break;
                }
                Ok(exec::TryResult::Fail) => {}
                Ok(exec::TryResult::Suspend) => {
                    for i in 0..scratch.rule_pending.len() {
                        let v = scratch.rule_pending[i];
                        if !scratch.pending.contains(&v) {
                            scratch.pending.push(v);
                        }
                    }
                }
            }
        }
        if let Some(e) = hard_err {
            self.scratch = scratch;
            return Err(e);
        }
        if let Some(rule) = committed {
            let r = self.commit_exec(rule, &mut scratch.frame);
            self.scratch = scratch;
            r?;
            self.finish_tracked(&item);
            return Ok(());
        }
        if scratch.pending.is_empty() {
            // All non-otherwise rules failed definitively.
            if let Some(rule) = &proc.otherwise {
                self.metrics.rules_tried += 1;
                let tried = match &self.store {
                    StoreHandle::Local(s) => exec::try_rule(rule, args, s, &mut scratch),
                    StoreHandle::Shared(s) => exec::try_rule(rule, args, s, &mut scratch),
                };
                match tried {
                    Err(e) => {
                        self.scratch = scratch;
                        return Err(e);
                    }
                    Ok(exec::TryResult::Commit) => {
                        let r = self.commit_exec(rule, &mut scratch.frame);
                        self.scratch = scratch;
                        r?;
                        self.finish_tracked(&item);
                        return Ok(());
                    }
                    Ok(exec::TryResult::Suspend) => {
                        let vars = std::mem::take(&mut scratch.rule_pending);
                        self.scratch = scratch;
                        *self.metrics.susp_by_proc.entry(name).or_insert(0) += 1;
                        self.suspend(item, vars);
                        return Ok(());
                    }
                    Ok(exec::TryResult::Fail) => {}
                }
            }
            let resolved = self.store.resolve(&goal);
            self.scratch = scratch;
            self.finish_tracked(&item);
            self.record_error(StrandError::NoMatchingRule { goal: resolved })
        } else {
            let vars = std::mem::take(&mut scratch.pending);
            self.scratch = scratch;
            *self.metrics.susp_by_proc.entry(name).or_insert(0) += 1;
            self.suspend(item, vars);
            Ok(())
        }
    }

    /// Rule dispatch through the reference interpreter
    /// (`ExecMode::Interpreted`): per-reduction `Pat` walking. Kept as the
    /// executable semantics the compiled tier is diffed against.
    fn reduce_rules_interpreted(
        &mut self,
        item: QItem,
        goal: Term,
        name: Atom,
        arity: usize,
    ) -> StrandResult<()> {
        let program = Arc::clone(&self.program);
        let Some(proc) = program.get(name.as_str(), arity) else {
            self.finish_tracked(&item);
            return self.record_error(StrandError::UndefinedProcedure {
                name: name.as_str().to_string(),
                arity,
            });
        };
        self.metrics.interpreted_reductions += 1;

        // Try rules in order; collect suspension variables from rules that
        // might still become applicable. The goal is a dereferenced local,
        // so its argument slice can be borrowed directly — no `to_vec`.
        let args: &[Term] = goal.goal_args();
        let mut pending = std::mem::take(&mut self.scratch.pending);
        pending.clear();
        let mut frame = std::mem::take(&mut self.scratch.frame);
        let mut otherwise: Option<&CompiledRule> = None;
        for rule in &proc.rules {
            if rule.otherwise {
                if otherwise.is_none() {
                    otherwise = Some(rule);
                }
                continue;
            }
            self.metrics.rules_tried += 1;
            frame.reset(rule.n_locals);
            match self.try_rule(rule, args, &mut frame) {
                Err(e) => {
                    self.scratch.frame = frame;
                    self.scratch.pending = pending;
                    return Err(e);
                }
                Ok(TryOutcome::Commit) => {
                    let r = self.commit(rule, &mut frame);
                    self.scratch.frame = frame;
                    self.scratch.pending = pending;
                    r?;
                    self.finish_tracked(&item);
                    return Ok(());
                }
                Ok(TryOutcome::Fail) => {}
                Ok(TryOutcome::Suspend(vs)) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            // All non-otherwise rules failed definitively.
            if let Some(rule) = otherwise {
                self.metrics.rules_tried += 1;
                frame.reset(rule.n_locals);
                match self.try_rule(rule, args, &mut frame) {
                    Err(e) => {
                        self.scratch.frame = frame;
                        self.scratch.pending = pending;
                        return Err(e);
                    }
                    Ok(TryOutcome::Commit) => {
                        let r = self.commit(rule, &mut frame);
                        self.scratch.frame = frame;
                        self.scratch.pending = pending;
                        r?;
                        self.finish_tracked(&item);
                        return Ok(());
                    }
                    Ok(TryOutcome::Suspend(vs)) => {
                        self.scratch.frame = frame;
                        self.scratch.pending = pending;
                        *self.metrics.susp_by_proc.entry(name).or_insert(0) += 1;
                        self.suspend(item, vs);
                        return Ok(());
                    }
                    Ok(TryOutcome::Fail) => {}
                }
            }
            self.scratch.frame = frame;
            self.scratch.pending = pending;
            let resolved = self.store.resolve(&goal);
            self.finish_tracked(&item);
            self.record_error(StrandError::NoMatchingRule { goal: resolved })
        } else {
            self.scratch.frame = frame;
            *self.metrics.susp_by_proc.entry(name).or_insert(0) += 1;
            // `pending` is donated to the suspension record; the scratch
            // buffer re-grows on the next suspending reduction (the commit
            // path never pushes, so it stays allocation-free).
            self.suspend(item, pending);
            Ok(())
        }
    }

    fn finish_tracked(&mut self, item: &QItem) {
        if item.tracked {
            self.metrics.track_done(self.current_node);
        }
    }

    fn try_rule(
        &self,
        rule: &CompiledRule,
        args: &[Term],
        frame: &mut strand_core::Frame,
    ) -> StrandResult<TryOutcome> {
        match match_args(args, &rule.head, &self.store, frame) {
            MatchOutcome::Fail => return Ok(TryOutcome::Fail),
            MatchOutcome::Suspend(vs) => return Ok(TryOutcome::Suspend(vs)),
            MatchOutcome::Match => {}
        }
        let mut pending = Vec::new();
        for guard in &rule.guards {
            // A guard mentioning a variable not bound by the head can never
            // be decided; treat as failure (and surface a programmer error).
            let Some(gterm) = guard.instantiate_ro(frame) else {
                return Ok(TryOutcome::Fail);
            };
            match strand_core::eval_guard(&gterm, &self.store)? {
                GuardOutcome::True => {}
                GuardOutcome::False => return Ok(TryOutcome::Fail),
                GuardOutcome::Suspend(vs) => {
                    for v in vs {
                        if !pending.contains(&v) {
                            pending.push(v);
                        }
                    }
                }
            }
        }
        if pending.is_empty() {
            Ok(TryOutcome::Commit)
        } else {
            Ok(TryOutcome::Suspend(pending))
        }
    }

    fn commit(&mut self, rule: &CompiledRule, frame: &mut strand_core::Frame) -> StrandResult<()> {
        for call in &rule.body {
            let goal = call.goal.instantiate(frame, &mut self.store);
            match &call.placement {
                None => {
                    let node = self.current_node;
                    self.spawn(goal, node);
                }
                Some(place) => {
                    let place_term = place.instantiate(frame, &mut self.store);
                    match strand_core::eval_arith(&place_term, &self.store) {
                        Ok(strand_core::arith::Evaled::Num(n)) => {
                            let target = self.map_node(n.as_f64() as i64);
                            self.spawn(goal, target);
                        }
                        Ok(strand_core::arith::Evaled::Suspend(_)) => {
                            // Placement not yet known: defer via the internal
                            // `'$spawn_at'` builtin, which suspends.
                            let node = self.current_node;
                            self.spawn(Term::tuple("$spawn_at", vec![place_term, goal]), node);
                        }
                        Err(e) => self.record_error(e)?,
                    }
                }
            }
        }
        Ok(())
    }

    /// Body instantiation for a committed compiled rule: identical spawn and
    /// placement semantics to [`Machine::commit`], but goals are built from
    /// pre-lowered [`exec::Tmpl`] templates (ground subtrees pre-built).
    fn commit_exec(
        &mut self,
        rule: &exec::ExecRule,
        frame: &mut strand_core::Frame,
    ) -> StrandResult<()> {
        for call in rule.body.iter() {
            let goal = call.goal.build(frame, &mut self.store);
            match &call.placement {
                None => {
                    let node = self.current_node;
                    self.spawn(goal, node);
                }
                Some(place) => {
                    let place_term = place.build(frame, &mut self.store);
                    match strand_core::eval_arith(&place_term, &self.store) {
                        Ok(strand_core::arith::Evaled::Num(n)) => {
                            let target = self.map_node(n.as_f64() as i64);
                            self.spawn(goal, target);
                        }
                        Ok(strand_core::arith::Evaled::Suspend(_)) => {
                            // Placement not yet known: defer via the internal
                            // `'$spawn_at'` builtin, which suspends.
                            let node = self.current_node;
                            self.spawn(Term::tuple("$spawn_at", vec![place_term, goal]), node);
                        }
                        Err(e) => self.record_error(e)?,
                    }
                }
            }
        }
        Ok(())
    }
}

enum TryOutcome {
    /// Head matched and guards passed; bindings are in the caller's frame.
    Commit,
    Fail,
    Suspend(Vec<VarId>),
}

/// Outcome of the fault dice for one cross-node delivery.
pub(crate) enum Delivery {
    Deliver,
    Drop,
    Duplicate,
    Delay(Time),
}

/// Merge per-worker shard reports into one run report. Output concatenates
/// in worker order, so a 1-thread parallel run reads exactly like the
/// simulator. Per-node counters add and per-node peaks/gauges take maxima —
/// both exact, since each node lives on exactly one worker.
pub fn merge_shard_reports(parts: Vec<ShardReport>, truncated: bool) -> RunReport {
    let mut metrics: Option<Metrics> = None;
    let mut output = Vec::new();
    let mut errors = Vec::new();
    let mut suspended_goals = Vec::new();
    let mut suspended = 0usize;
    let mut trace = Vec::new();
    let mut crashed_nodes = Vec::new();
    let mut dead = 0usize;
    let mut dead_goals = Vec::new();
    for part in parts {
        match &mut metrics {
            Some(m) => m.merge(&part.metrics),
            None => metrics = Some(part.metrics),
        }
        output.extend(part.output);
        errors.extend(part.errors);
        suspended_goals.extend(part.suspended_goals);
        suspended += part.suspended;
        trace.extend(part.trace);
        crashed_nodes.extend(part.crashed_nodes);
        dead += part.dead;
        dead_goals.extend(part.dead_goals);
    }
    let metrics = metrics.unwrap_or_else(|| Metrics::new(0));
    crashed_nodes.sort_unstable();
    let status = if truncated {
        RunStatus::Truncated {
            reductions: metrics.total_reductions,
        }
    } else if !crashed_nodes.is_empty() && suspended > 0 {
        // Same rule as the simulator's `build_report`: survivors stuck with
        // dead nodes in play means the network partitioned.
        RunStatus::Partitioned {
            suspended,
            dead,
            crashed_nodes,
        }
    } else if suspended == 0 {
        RunStatus::Completed
    } else {
        RunStatus::Quiescent { suspended }
    };
    suspended_goals.sort_by_key(|t| t.to_string());
    suspended_goals.truncate(16);
    dead_goals.sort_by_key(|t| t.to_string());
    dead_goals.truncate(16);
    RunReport {
        status,
        metrics,
        output,
        errors,
        suspended_goals,
        dead_goals,
        trace,
    }
}
