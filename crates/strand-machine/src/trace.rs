//! Optional execution tracing.
//!
//! When [`MachineConfig::record_trace`](crate::MachineConfig) is set, the
//! machine records one [`TraceEvent`] per scheduler action. Traces make the
//! simulator's behaviour inspectable — which process ran where and when,
//! what suspended on what, which messages crossed nodes — and back the
//! debugging story a language implementation owes its users.

use strand_core::{NodeId, Term, Time};

/// One scheduler event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A process reduced (committed, executed a builtin, or ran a foreign
    /// procedure).
    Reduce {
        time: Time,
        node: NodeId,
        pid: u64,
        goal: String,
    },
    /// A process suspended on unbound variables.
    Suspend {
        time: Time,
        node: NodeId,
        pid: u64,
        goal: String,
        vars: usize,
    },
    /// A suspended process was woken by a binding.
    Wake {
        time: Time,
        binder: NodeId,
        node: NodeId,
        pid: u64,
    },
    /// A goal was spawned onto a node (possibly remote).
    Spawn {
        time: Time,
        from: NodeId,
        to: NodeId,
        goal: String,
    },
    /// A node died per the fault plan: its queue and suspensions are lost.
    Crash {
        time: Time,
        node: NodeId,
        lost_queue: usize,
        lost_suspended: usize,
    },
    /// A worker's whole shard was killed by a chaos plan (wall-clock fault
    /// injection): every node it owned crashed at once. `time` is the
    /// worker's local virtual clock when the kill landed.
    ShardKill {
        time: Time,
        worker: usize,
        nodes: usize,
        lost_queue: usize,
        lost_suspended: usize,
    },
    /// A cross-node delivery was lost (fault injection or dead target).
    Drop {
        time: Time,
        from: NodeId,
        to: NodeId,
        goal: String,
    },
    /// A cross-node delivery arrived twice (fault injection).
    Duplicate {
        time: Time,
        from: NodeId,
        to: NodeId,
        goal: String,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::Reduce { time, .. }
            | TraceEvent::Suspend { time, .. }
            | TraceEvent::Wake { time, .. }
            | TraceEvent::Spawn { time, .. }
            | TraceEvent::Crash { time, .. }
            | TraceEvent::ShardKill { time, .. }
            | TraceEvent::Drop { time, .. }
            | TraceEvent::Duplicate { time, .. } => *time,
        }
    }

    /// One-line rendering, timeline style.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::Reduce {
                time,
                node,
                pid,
                goal,
            } => {
                format!("[{time:>6}] n{} reduce  p{pid} {goal}", node.0 + 1)
            }
            TraceEvent::Suspend {
                time,
                node,
                pid,
                goal,
                vars,
            } => {
                format!(
                    "[{time:>6}] n{} suspend p{pid} on {vars} var(s): {goal}",
                    node.0 + 1
                )
            }
            TraceEvent::Wake {
                time,
                binder,
                node,
                pid,
            } => {
                format!(
                    "[{time:>6}] n{} wake    p{pid} (bound on n{})",
                    node.0 + 1,
                    binder.0 + 1
                )
            }
            TraceEvent::Spawn {
                time,
                from,
                to,
                goal,
            } => {
                format!(
                    "[{time:>6}] n{} spawn   -> n{}: {goal}",
                    from.0 + 1,
                    to.0 + 1
                )
            }
            TraceEvent::Crash {
                time,
                node,
                lost_queue,
                lost_suspended,
            } => {
                format!(
                    "[{time:>6}] n{} CRASH   ({lost_queue} queued, {lost_suspended} suspended lost)",
                    node.0 + 1
                )
            }
            TraceEvent::ShardKill {
                time,
                worker,
                nodes,
                lost_queue,
                lost_suspended,
            } => {
                format!(
                    "[{time:>6}] w{worker} SHARD KILL ({nodes} node(s), \
                     {lost_queue} queued, {lost_suspended} suspended lost)"
                )
            }
            TraceEvent::Drop {
                time,
                from,
                to,
                goal,
            } => {
                format!(
                    "[{time:>6}] n{} drop    -> n{}: {goal}",
                    from.0 + 1,
                    to.0 + 1
                )
            }
            TraceEvent::Duplicate {
                time,
                from,
                to,
                goal,
            } => {
                format!(
                    "[{time:>6}] n{} dup     -> n{}: {goal}",
                    from.0 + 1,
                    to.0 + 1
                )
            }
        }
    }
}

/// Render a whole trace as a timeline.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

/// Summarize a trace: events by kind, suggesting where time went.
pub fn trace_summary(events: &[TraceEvent]) -> String {
    let (mut reduces, mut suspends, mut wakes, mut spawns, mut remote) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut crashes, mut drops, mut dups) = (0u64, 0u64, 0u64);
    for e in events {
        match e {
            TraceEvent::Reduce { .. } => reduces += 1,
            TraceEvent::Suspend { .. } => suspends += 1,
            TraceEvent::Wake { .. } => wakes += 1,
            TraceEvent::Spawn { from, to, .. } => {
                spawns += 1;
                if from != to {
                    remote += 1;
                }
            }
            TraceEvent::Crash { .. } => crashes += 1,
            // A shard kill is one crash event per the summary's purposes,
            // however many nodes it took down.
            TraceEvent::ShardKill { .. } => crashes += 1,
            TraceEvent::Drop { .. } => drops += 1,
            TraceEvent::Duplicate { .. } => dups += 1,
        }
    }
    let mut summary = format!(
        "{reduces} reductions, {suspends} suspensions, {wakes} wakes, \
         {spawns} spawns ({remote} remote)"
    );
    if crashes + drops + dups > 0 {
        summary.push_str(&format!(
            ", {crashes} crashes, {drops} drops, {dups} duplicates"
        ));
    }
    summary
}

/// Helper used by the machine to stringify goals lazily (only when tracing
/// is on — the common case pays nothing).
pub(crate) fn goal_text(goal: &Term) -> String {
    let s = goal.to_string();
    if s.len() > 80 {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(79)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_goal, MachineConfig};

    fn traced(src: &str, goal: &str, nodes: u32) -> Vec<TraceEvent> {
        let mut cfg = MachineConfig::with_nodes(nodes);
        cfg.record_trace = true;
        run_goal(src, goal, cfg).expect("runs").report.trace
    }

    #[test]
    fn trace_records_reductions_and_suspensions() {
        let src = r#"
            go(V) :- add(A, B, V), feed(A, B).
            add(A, B, V) :- V := A + B.
            feed(A, B) :- A := 1, B := 2.
        "#;
        let events = traced(src, "go(V)", 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Reduce { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Suspend { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Wake { .. })));
        // Timestamps never decrease per node... globally they are the
        // scheduler's event order; check monotone non-decreasing overall
        // is NOT guaranteed across nodes, but the trace is non-empty and
        // renders.
        let text = render_trace(&events);
        assert!(text.contains("reduce"));
        assert!(text.contains("suspend"));
        let summary = trace_summary(&events);
        assert!(summary.contains("reductions"), "{summary}");
    }

    #[test]
    fn trace_records_remote_spawns() {
        let src = "go :- ping@2. ping.";
        let events = traced(src, "go", 2);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Spawn { from, to, .. } if from != to)),
            "{events:?}"
        );
        assert!(trace_summary(&events).contains("(1 remote)"));
    }

    #[test]
    fn tracing_off_records_nothing() {
        let r = run_goal("go.", "go", MachineConfig::default()).unwrap();
        assert!(r.report.trace.is_empty());
    }

    #[test]
    fn long_goals_truncate() {
        let long = strand_core::Term::list((0..100).map(strand_core::Term::int));
        let text = goal_text(&long);
        assert!(text.chars().count() <= 80);
        assert!(text.ends_with('…'));
    }
}
