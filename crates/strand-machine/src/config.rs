//! Machine configuration.

use std::collections::HashSet;
use strand_core::Time;

/// Configuration of the simulated multicomputer.
///
/// The defaults model a modest message-passing machine of the paper's era in
/// *relative* terms: one tick per reduction, ten ticks for an inter-node
/// message. Absolute values are irrelevant — experiments report shapes and
/// ratios (EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of virtual nodes (processors). Language-level node numbers are
    /// 1-based: `Goal@1` … `Goal@N`.
    pub nodes: u32,
    /// Virtual time added to deliver anything across nodes (process spawns,
    /// stream messages, binding notifications).
    pub latency: Time,
    /// Virtual time consumed by one reduction.
    pub reduction_cost: Time,
    /// Hard cap on total reductions; exceeding it is an error (guards
    /// against runaway programs in tests).
    pub max_reductions: u64,
    /// Seed for the machine's deterministic `rand_num` primitive.
    pub seed: u64,
    /// Predicate names whose *live* (spawned but not yet reduced) process
    /// counts are tracked per node — used by experiment E2 to measure
    /// concurrent node evaluations.
    pub tracked: HashSet<String>,
    /// Stop at the first runtime error (default) instead of collecting.
    pub fail_fast: bool,
    /// Record a [`TraceEvent`](crate::trace::TraceEvent) per scheduler
    /// action (off by default; tracing costs time and memory).
    pub record_trace: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            nodes: 1,
            latency: 10,
            reduction_cost: 1,
            max_reductions: 50_000_000,
            seed: 0xA4C0_11E5,
            tracked: HashSet::new(),
            fail_fast: true,
            record_trace: false,
        }
    }
}

impl MachineConfig {
    /// Config with `n` nodes and defaults otherwise.
    pub fn with_nodes(n: u32) -> Self {
        MachineConfig {
            nodes: n.max(1),
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style latency override.
    pub fn latency(mut self, latency: Time) -> Self {
        self.latency = latency;
        self
    }

    /// Track live processes of the given predicate name (experiment E2).
    pub fn track(mut self, name: &str) -> Self {
        self.tracked.insert(name.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MachineConfig::default();
        assert_eq!(c.nodes, 1);
        assert!(c.reduction_cost > 0);
        assert!(c.fail_fast);
    }

    #[test]
    fn builder_chains() {
        let c = MachineConfig::with_nodes(8).seed(7).latency(3).track("eval");
        assert_eq!(c.nodes, 8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.latency, 3);
        assert!(c.tracked.contains("eval"));
    }

    #[test]
    fn zero_nodes_clamped_to_one() {
        assert_eq!(MachineConfig::with_nodes(0).nodes, 1);
    }
}
