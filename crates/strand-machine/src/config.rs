//! Machine configuration.

use std::collections::HashSet;
use strand_core::Time;

/// Per-edge message fault probabilities (applied to cross-node deliveries:
/// remote spawns and port/stream sends; binding notifications stay reliable
/// — see DESIGN.md, "Fault model").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EdgeFaults {
    /// Probability a delivery is silently lost.
    pub drop_prob: f64,
    /// Probability a delivery arrives twice.
    pub dup_prob: f64,
    /// Probability a delivery is held up for `delay_ticks` extra.
    pub delay_prob: f64,
    /// Extra virtual time added when a delay fault fires.
    pub delay_ticks: Time,
}

impl EdgeFaults {
    /// True when no fault can ever fire on this edge.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0
    }
}

/// A deterministic, seeded fault schedule for a run.
///
/// Node numbers are 1-based, like `Goal@J` placements. An empty plan (the
/// default) injects nothing and leaves every run bit-identical to a machine
/// without the fault layer.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// `(node, T)`: the node dies at virtual time `T` — its run queue is
    /// dropped, its suspended goals never wake, and later deliveries to it
    /// are lost.
    pub crashes: Vec<(u32, Time)>,
    /// Fault probabilities applied to every cross-node edge.
    pub default_edge: EdgeFaults,
    /// Per-edge `(from, to, faults)` overrides of `default_edge`.
    pub edges: Vec<(u32, u32, EdgeFaults)>,
    /// `(node, factor)`: every reduction on the node costs `factor`× the
    /// normal virtual time (straggler injection).
    pub slowdowns: Vec<(u32, u64)>,
    /// Seed of the fault RNG — deliberately separate from
    /// [`MachineConfig::seed`] so enabling faults never perturbs the
    /// program-visible `rand_num` stream.
    pub seed: u64,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.default_edge.is_quiet()
            && self.edges.iter().all(|(_, _, e)| e.is_quiet())
            && self.slowdowns.is_empty()
    }

    /// Builder: crash `node` (1-based) at virtual time `at`.
    pub fn crash(mut self, node: u32, at: Time) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// Builder: drop each cross-node delivery with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.default_edge.drop_prob = p;
        self
    }

    /// Builder: duplicate each cross-node delivery with probability `p`.
    pub fn dup_prob(mut self, p: f64) -> Self {
        self.default_edge.dup_prob = p;
        self
    }

    /// Builder: delay each cross-node delivery by `ticks` with probability `p`.
    pub fn delay(mut self, p: f64, ticks: Time) -> Self {
        self.default_edge.delay_prob = p;
        self.default_edge.delay_ticks = ticks;
        self
    }

    /// Builder: override the fault probabilities of one directed edge.
    pub fn edge(mut self, from: u32, to: u32, faults: EdgeFaults) -> Self {
        self.edges.push((from, to, faults));
        self
    }

    /// Builder: slow `node` (1-based) down by `factor`×.
    pub fn slowdown(mut self, node: u32, factor: u64) -> Self {
        self.slowdowns.push((node, factor));
        self
    }

    /// Builder: fault-RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fault probabilities in force on a directed edge (1-based nodes).
    pub fn edge_faults(&self, from: u32, to: u32) -> EdgeFaults {
        self.edges
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, e)| *e)
            .unwrap_or(self.default_edge)
    }
}

/// A seeded wall-clock fault schedule for the parallel backend — the
/// real-concurrency analogue of [`FaultPlan`].
///
/// Where `FaultPlan` speaks virtual time and 1-based node numbers,
/// `ChaosPlan` speaks worker shards and reduction counts: shard `w` is the
/// worker thread owning every node `i` with `i % threads == w` (0-based).
/// Faults act at the worker boundary — a kill tears down a whole shard,
/// drop/duplicate act on cross-worker batches at the outbox — because that
/// is the unit of real concurrency. Binding notifications (wakes) are never
/// dropped or duplicated, mirroring the virtual-time contract that faults
/// model the network, not the shared store; only remote spawns are fair
/// game.
///
/// Reproducibility caveat: each worker derives its own RNG from `seed`, so
/// a given *schedule* replays exactly, but thread interleaving still varies
/// run to run — chaos runs are reproducible in distribution, not
/// bit-identical (DESIGN.md §8).
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// `(shard, R)`: worker `shard` kills its whole shard once the global
    /// reduction count reaches `R` — run queues dropped, suspensions torn,
    /// owned nodes marked crashed (a `Partitioned`-style status surfaces if
    /// work is left stranded). The dead worker keeps draining its channel,
    /// discarding deliveries, so peers and the quiescence protocol stay
    /// live.
    pub kills: Vec<(u32, u64)>,
    /// Probability an outgoing cross-worker batch has its remote spawns
    /// dropped at the outbox (wakes in the batch still ship).
    pub drop_prob: f64,
    /// Probability an outgoing cross-worker batch has its remote spawns
    /// duplicated (the copy arrives as a second batch).
    pub dup_prob: f64,
    /// `(shard, stall_us)`: inject `stall_us` microseconds of sleep per
    /// scheduling turn of the shard's drain loop (straggler injection).
    pub throttles: Vec<(u32, u64)>,
    /// Seed of the chaos RNG; each worker decorrelates it by index.
    /// Separate from [`MachineConfig::seed`] so enabling chaos never
    /// perturbs the program-visible `rand_num` stream.
    pub seed: u64,
}

impl ChaosPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.throttles.is_empty()
    }

    /// Builder: kill worker `shard`'s whole shard once the global reduction
    /// count reaches `at_reductions`.
    pub fn kill(mut self, shard: u32, at_reductions: u64) -> Self {
        self.kills.push((shard, at_reductions));
        self
    }

    /// Builder: drop each outgoing batch's remote spawns with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Builder: duplicate each outgoing batch's remote spawns with
    /// probability `p`.
    pub fn dup_prob(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Builder: stall worker `shard` for `stall_us` µs per scheduling turn.
    pub fn throttle(mut self, shard: u32, stall_us: u64) -> Self {
        self.throttles.push((shard, stall_us));
        self
    }

    /// Builder: chaos-RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parse the CLI chaos spec shared by the example runners:
    /// `seed=N,kill=shard@reductions,drop=p,dup=p,slow=shard:us`. Every key
    /// is optional; `kill` and `slow` may repeat. The empty string is the
    /// empty plan.
    pub fn parse_spec(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let err = || {
                format!(
                    "cannot parse chaos spec element `{part}`; expected a comma list of \
                     seed=N, kill=shard@reductions, drop=p, dup=p, slow=shard:us"
                )
            };
            let (key, value) = part.split_once('=').ok_or_else(err)?;
            plan = match key {
                "seed" => plan.seed(value.parse().map_err(|_| err())?),
                "drop" => plan.drop_prob(value.parse().map_err(|_| err())?),
                "dup" => plan.dup_prob(value.parse().map_err(|_| err())?),
                "kill" => {
                    let (shard, at) = value.split_once('@').ok_or_else(err)?;
                    plan.kill(
                        shard.parse().map_err(|_| err())?,
                        at.parse().map_err(|_| err())?,
                    )
                }
                "slow" => {
                    let (shard, us) = value.split_once(':').ok_or_else(err)?;
                    plan.throttle(
                        shard.parse().map_err(|_| err())?,
                        us.parse().map_err(|_| err())?,
                    )
                }
                _ => return Err(err()),
            };
        }
        Ok(plan)
    }

    /// Earliest kill point scheduled for `shard`, if any.
    pub fn kill_at(&self, shard: u32) -> Option<u64> {
        self.kills
            .iter()
            .filter(|(s, _)| *s == shard)
            .map(|(_, at)| *at)
            .min()
    }

    /// Injected stall per scheduling turn for `shard`, in microseconds.
    pub fn stall_us(&self, shard: u32) -> u64 {
        self.throttles
            .iter()
            .filter(|(s, _)| *s == shard)
            .map(|(_, us)| *us)
            .sum()
    }
}

/// Which execution engine runs the program (see [`crate::backend`]).
///
/// `Deterministic` is the discrete-event simulator this crate implements: a
/// single OS thread, virtual clocks, bit-identical replays. `Parallel` asks
/// for the real multi-threaded backend (crate `strand-parallel`), which runs
/// virtual nodes on OS threads and must be registered with
/// [`crate::backend::register_parallel_backend`] before use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The single-threaded discrete-event reference machine.
    #[default]
    Deterministic,
    /// Real OS threads, one worker per virtual node up to `threads`.
    /// `threads == 0` means auto: `min(nodes, available_parallelism)`.
    Parallel { threads: u32 },
}

/// Which rule-execution tier the machine runs (see [`crate::exec`]).
///
/// `Compiled` (the default) lowers every procedure to direct-threaded op
/// sequences at machine construction: pre-resolved slot indices,
/// first-argument clause indexing and fused match-then-instantiate.
/// `Interpreted` walks the `Pat` trees per reduction and is kept as the
/// semantic reference — the two tiers are bit-identical by contract, and
/// the conformance suite diffs them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Direct-threaded lowered rules (fast path).
    #[default]
    Compiled,
    /// Per-reduction pattern interpretation (reference semantics).
    Interpreted,
}

/// Where `after_unless` deadlines come from.
///
/// `Virtual` (the default) is the lazy virtual-time rule both backends have
/// always used: a `'$timer'` deadline fires only once the global in-flight
/// gate reads zero, so a timeout never races the value it guards. That rule
/// is exactly wrong for a *resident* fleet, which parks at quiescence — the
/// state a lazy deadline waits for is the state where nothing will ever
/// observe it. `WallClock` instead registers deadlines into the parallel
/// backend's hashed timer wheel (1 virtual tick = 1 ms of wall time); the
/// idle-park arm consults the wheel before parking and wakes the fleet when
/// the earliest deadline falls due. Only the parallel backend honors
/// `WallClock`; the deterministic simulator always runs virtual deadlines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimerSource {
    /// Lazy virtual-time deadlines that fire at quiescence (reference
    /// semantics, bit-identical replays).
    #[default]
    Virtual,
    /// Wall-clock deadlines from the parallel backend's timer wheel
    /// (resident services; 1 tick = 1 ms).
    WallClock,
}

/// Configuration of the simulated multicomputer.
///
/// The defaults model a modest message-passing machine of the paper's era in
/// *relative* terms: one tick per reduction, ten ticks for an inter-node
/// message. Absolute values are irrelevant — experiments report shapes and
/// ratios (EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of virtual nodes (processors). Language-level node numbers are
    /// 1-based: `Goal@1` … `Goal@N`.
    pub nodes: u32,
    /// Virtual time added to deliver anything across nodes (process spawns,
    /// stream messages, binding notifications).
    pub latency: Time,
    /// Virtual time consumed by one reduction.
    pub reduction_cost: Time,
    /// Hard cap on total reductions; exceeding it is an error (guards
    /// against runaway programs in tests).
    pub max_reductions: u64,
    /// Seed for the machine's deterministic `rand_num` primitive.
    pub seed: u64,
    /// Predicate names whose *live* (spawned but not yet reduced) process
    /// counts are tracked per node — used by experiment E2 to measure
    /// concurrent node evaluations.
    pub tracked: HashSet<String>,
    /// Stop at the first runtime error (default) instead of collecting.
    pub fail_fast: bool,
    /// Record a [`TraceEvent`](crate::trace::TraceEvent) per scheduler
    /// action (off by default; tracing costs time and memory).
    pub record_trace: bool,
    /// Deterministic fault schedule (empty by default: a perfect machine).
    /// Virtual-time only — the parallel backend rejects non-empty plans and
    /// points at [`MachineConfig::chaos`] instead.
    pub faults: FaultPlan,
    /// Wall-clock fault schedule for the parallel backend (empty by
    /// default). The deterministic simulator rejects non-empty plans — use
    /// [`MachineConfig::faults`] there.
    pub chaos: ChaosPlan,
    /// Execution engine (default: the deterministic simulator).
    pub backend: Backend,
    /// Rule-execution tier (default: compiled; `Interpreted` is the
    /// reference interpreter).
    pub exec: ExecMode,
    /// Where `after_unless` deadlines come from (default: lazy virtual
    /// time; `WallClock` is honored by the parallel backend only).
    pub timer_source: TimerSource,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            nodes: 1,
            latency: 10,
            reduction_cost: 1,
            max_reductions: 50_000_000,
            seed: 0xA4C0_11E5,
            tracked: HashSet::new(),
            fail_fast: true,
            record_trace: false,
            faults: FaultPlan::default(),
            chaos: ChaosPlan::default(),
            backend: Backend::default(),
            exec: ExecMode::default(),
            timer_source: TimerSource::default(),
        }
    }
}

impl MachineConfig {
    /// Config with `n` nodes and defaults otherwise.
    pub fn with_nodes(n: u32) -> Self {
        MachineConfig {
            nodes: n.max(1),
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style latency override.
    pub fn latency(mut self, latency: Time) -> Self {
        self.latency = latency;
        self
    }

    /// Track live processes of the given predicate name (experiment E2).
    pub fn track(mut self, name: &str) -> Self {
        self.tracked.insert(name.to_string());
        self
    }

    /// Builder-style fault plan override.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Builder-style chaos plan override (wall-clock faults; parallel
    /// backend only).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Builder: run on the multi-threaded backend with `threads` workers
    /// (0 = auto, `min(nodes, available_parallelism)`).
    pub fn parallel(mut self, threads: u32) -> Self {
        self.backend = Backend::Parallel { threads };
        self
    }

    /// Builder-style backend override.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style execution-tier override.
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Builder: run on the reference interpreter instead of the compiled
    /// tier.
    pub fn interpreted(mut self) -> Self {
        self.exec = ExecMode::Interpreted;
        self
    }

    /// Builder-style timer-source override.
    pub fn timer_source(mut self, source: TimerSource) -> Self {
        self.timer_source = source;
        self
    }

    /// Builder: arm `after_unless` deadlines on the parallel backend's
    /// wall-clock timer wheel instead of lazy virtual time (resident
    /// services; 1 tick = 1 ms).
    pub fn wall_clock_timers(mut self) -> Self {
        self.timer_source = TimerSource::WallClock;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MachineConfig::default();
        assert_eq!(c.nodes, 1);
        assert!(c.reduction_cost > 0);
        assert!(c.fail_fast);
    }

    #[test]
    fn builder_chains() {
        let c = MachineConfig::with_nodes(8)
            .seed(7)
            .latency(3)
            .track("eval");
        assert_eq!(c.nodes, 8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.latency, 3);
        assert!(c.tracked.contains("eval"));
    }

    #[test]
    fn exec_tier_defaults_to_compiled() {
        assert_eq!(MachineConfig::default().exec, ExecMode::Compiled);
        assert_eq!(
            MachineConfig::default().interpreted().exec,
            ExecMode::Interpreted
        );
    }

    #[test]
    fn timer_source_defaults_to_virtual() {
        assert_eq!(MachineConfig::default().timer_source, TimerSource::Virtual);
        assert_eq!(
            MachineConfig::default().wall_clock_timers().timer_source,
            TimerSource::WallClock
        );
        assert_eq!(
            MachineConfig::default()
                .timer_source(TimerSource::Virtual)
                .timer_source,
            TimerSource::Virtual
        );
    }

    #[test]
    fn zero_nodes_clamped_to_one() {
        assert_eq!(MachineConfig::with_nodes(0).nodes, 1);
    }

    #[test]
    fn default_fault_plan_is_empty() {
        assert!(MachineConfig::default().faults.is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn fault_plan_builders_chain() {
        let plan = FaultPlan::default()
            .crash(2, 500)
            .drop_prob(0.1)
            .slowdown(3, 4)
            .seed(7);
        assert!(!plan.is_empty());
        assert_eq!(plan.crashes, vec![(2, 500)]);
        assert_eq!(plan.slowdowns, vec![(3, 4)]);
        assert_eq!(plan.seed, 7);
        assert!((plan.edge_faults(1, 2).drop_prob - 0.1).abs() < 1e-12);
    }

    #[test]
    fn default_chaos_plan_is_empty() {
        assert!(MachineConfig::default().chaos.is_empty());
        assert!(ChaosPlan::default().is_empty());
    }

    #[test]
    fn chaos_plan_builders_chain() {
        let plan = ChaosPlan::default()
            .kill(1, 5_000)
            .kill(1, 2_000)
            .drop_prob(0.1)
            .dup_prob(0.05)
            .throttle(2, 40)
            .seed(9);
        assert!(!plan.is_empty());
        assert_eq!(plan.kill_at(1), Some(2_000));
        assert_eq!(plan.kill_at(0), None);
        assert_eq!(plan.stall_us(2), 40);
        assert_eq!(plan.stall_us(1), 0);
        assert_eq!(plan.seed, 9);
        assert!((plan.drop_prob - 0.1).abs() < 1e-12);
        assert!((plan.dup_prob - 0.05).abs() < 1e-12);
    }

    #[test]
    fn chaos_spec_round_trips_the_builders() {
        let plan = ChaosPlan::parse_spec("seed=9,kill=1@2000,drop=0.1,dup=0.05,slow=2:40").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.kill_at(1), Some(2_000));
        assert_eq!(plan.stall_us(2), 40);
        assert!((plan.drop_prob - 0.1).abs() < 1e-12);
        assert!((plan.dup_prob - 0.05).abs() < 1e-12);
        assert!(ChaosPlan::parse_spec("").unwrap().is_empty());
        assert!(ChaosPlan::parse_spec("kill=1").is_err());
        assert!(ChaosPlan::parse_spec("drop=lots").is_err());
        assert!(ChaosPlan::parse_spec("nope=1").is_err());
    }

    #[test]
    fn edge_overrides_beat_default() {
        let quiet = EdgeFaults::default();
        let plan = FaultPlan::default().drop_prob(0.5).edge(1, 2, quiet);
        assert!(plan.edge_faults(1, 2).is_quiet());
        assert!(!plan.edge_faults(2, 1).is_quiet());
    }
}
