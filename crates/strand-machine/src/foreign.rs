//! Foreign (native Rust) procedures — the paper's multilingual approach.
//!
//! §2.1: *"we assume a multilingual approach to parallel programming, in
//! which low level, computationally-intensive components of applications
//! are implemented in low level languages. The high level language is used
//! primarily to construct parallel programs from these sequential
//! components."* In 1990 the sequential components were C; here they are
//! Rust closures registered on the machine.
//!
//! A foreign procedure `name/n` is called like any goal
//! `name(In1, …, In(n-1), Out)`: the machine waits (dataflow suspension)
//! until every input argument is ground, invokes the closure with the
//! resolved inputs, binds `Out` to the returned term, and advances the
//! executing node's clock by the returned virtual cost — so an expensive
//! native computation occupies its simulated processor for a realistic
//! time.

use crate::machine::Machine;
use std::collections::HashMap;
use std::sync::Arc;
use strand_core::{StrandResult, Term, Time, VarId};

/// A foreign implementation: resolved ground inputs → (result, virtual
/// cost in ticks).
pub type ForeignFn = Box<dyn FnMut(&[Term]) -> StrandResult<(Term, Time)> + Send>;

/// A *pure* foreign implementation: no interior state, callable from any
/// thread. The multi-threaded backend executes these outside the machine
/// lock, so native computation genuinely overlaps coordination.
pub type PureForeignFn = dyn Fn(&[Term]) -> StrandResult<(Term, Time)> + Send + Sync;

/// A portable library of pure foreign procedures. Unlike closures registered
/// with [`Machine::register_foreign`], a library is `Clone` and can be
/// installed on any machine — this is how foreign code travels through the
/// [`crate::backend::ExecBackend`] interface to whichever engine runs it.
#[derive(Clone, Default)]
pub struct ForeignLib {
    entries: Vec<(String, usize, Arc<PureForeignFn>)>,
}

impl ForeignLib {
    pub fn new() -> ForeignLib {
        ForeignLib::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register `name/arity` (arity includes the output argument).
    pub fn register(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&[Term]) -> StrandResult<(Term, Time)> + Send + Sync + 'static,
    ) {
        assert!(arity >= 1, "foreign procedures need an output argument");
        self.entries.push((name.to_string(), arity, Arc::new(f)));
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, usize, &Arc<PureForeignFn>)> {
        self.entries.iter().map(|(n, a, f)| (n.as_str(), *a, f))
    }
}

/// Registry of foreign procedures, keyed by name/arity (arity counts the
/// output argument).
#[derive(Default)]
pub struct ForeignRegistry {
    fns: HashMap<(String, usize), ForeignFn>,
    pure: HashMap<(String, usize), Arc<PureForeignFn>>,
}

impl ForeignRegistry {
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty() && self.pure.is_empty()
    }

    pub fn contains(&self, name: &str, arity: usize) -> bool {
        self.fns.contains_key(&(name.to_string(), arity))
            || self.pure.contains_key(&(name.to_string(), arity))
    }
}

impl Machine {
    /// Register a foreign procedure `name/arity` (arity includes the final
    /// output argument). Inputs arrive fully resolved and ground.
    pub fn register_foreign(
        &mut self,
        name: &str,
        arity: usize,
        f: impl FnMut(&[Term]) -> StrandResult<(Term, Time)> + Send + 'static,
    ) {
        assert!(arity >= 1, "foreign procedures need an output argument");
        self.foreign
            .fns
            .insert((name.to_string(), arity), Box::new(f));
    }

    /// Register a *pure* foreign procedure — stateless, callable from any
    /// thread. On the multi-threaded backend each worker calls these inline
    /// on its own shard (no lock is held, so native computation on one
    /// worker genuinely overlaps coordination on the others); on the
    /// simulator they behave exactly like [`Machine::register_foreign`].
    pub fn register_foreign_pure(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&[Term]) -> StrandResult<(Term, Time)> + Send + Sync + 'static,
    ) {
        assert!(arity >= 1, "foreign procedures need an output argument");
        self.foreign
            .pure
            .insert((name.to_string(), arity), Arc::new(f));
    }

    /// Install every procedure of a [`ForeignLib`] on this machine.
    pub fn install_lib(&mut self, lib: &ForeignLib) {
        for (name, arity, f) in lib.iter() {
            self.foreign
                .pure
                .insert((name.to_string(), arity), Arc::clone(f));
        }
    }

    /// Attempt to run a foreign call. Returns:
    /// * `None` — not a foreign procedure;
    /// * `Some(Ok(None))` — executed (or suspended internally);
    /// * `Some(Err(e))` — machine-fatal error.
    pub(crate) fn try_foreign(
        &mut self,
        name: &str,
        goal: &Term,
    ) -> Option<StrandResult<ForeignOutcome>> {
        let args = goal.goal_args();
        if !self.foreign.contains(name, args.len()) {
            return None;
        }
        // Inputs are all but the last argument; they must be ground.
        let n = args.len();
        let mut inputs = Vec::with_capacity(n - 1);
        let mut pending: Vec<VarId> = Vec::new();
        for a in &args[..n - 1] {
            let resolved = self.store.resolve(a);
            for v in resolved.vars() {
                if !pending.contains(&v) {
                    pending.push(v);
                }
            }
            inputs.push(resolved);
        }
        if !pending.is_empty() {
            return Some(Ok(ForeignOutcome::Suspend(pending)));
        }
        let out_arg = args[n - 1].clone();
        if let Some(f) = self.foreign.pure.get(&(name.to_string(), n)) {
            let f = Arc::clone(f);
            let result = f(&inputs);
            return Some(self.finish_foreign_call(name, n, result, out_arg));
        }
        // Take the closure out to avoid aliasing self mutably twice.
        let mut f = self
            .foreign
            .fns
            .remove(&(name.to_string(), n))
            .expect("checked contains");
        let result = f(&inputs);
        self.foreign.fns.insert((name.to_string(), n), f);
        Some(self.finish_foreign_call(name, n, result, out_arg))
    }

    /// Turn a foreign closure's result into an outcome: charge the virtual
    /// cost and bind the output argument.
    pub(crate) fn finish_foreign_call(
        &mut self,
        name: &str,
        arity: usize,
        result: StrandResult<(Term, Time)>,
        out_arg: Term,
    ) -> StrandResult<ForeignOutcome> {
        match result {
            Ok((value, cost)) => {
                self.extra_cost += cost;
                match self.store.deref(&out_arg) {
                    Term::Var(v) => match self.bind_now(v, value) {
                        Ok(()) => Ok(ForeignOutcome::Done),
                        Err(e) => Err(e),
                    },
                    other => Ok(ForeignOutcome::Error(
                        strand_core::StrandError::BadBuiltin {
                            builtin: format!("{name}/{arity}"),
                            detail: format!("output argument already bound: {other}"),
                        },
                    )),
                }
            }
            Err(e) => Ok(ForeignOutcome::Error(e)),
        }
    }
}

/// Result of a foreign execution attempt.
pub(crate) enum ForeignOutcome {
    Done,
    Suspend(Vec<VarId>),
    Error(strand_core::StrandError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ast_to_term, MachineConfig};
    use std::collections::BTreeMap;
    use strand_parse::{compile_program, parse_program, parse_term};

    fn run_with(
        src: &str,
        goal: &str,
        config: MachineConfig,
        register: impl FnOnce(&mut Machine),
    ) -> crate::GoalResult {
        let program = parse_program(src).unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut machine = Machine::new(compiled, config);
        register(&mut machine);
        let goal_ast = parse_term(goal).unwrap();
        let mut vars = BTreeMap::new();
        let g = ast_to_term(&goal_ast, &mut machine, &mut vars);
        machine.start(g);
        let report = machine.run().unwrap();
        let bindings = vars
            .into_iter()
            .map(|(name, term)| (name.clone(), machine.store().resolve(&term)))
            .collect();
        crate::GoalResult { report, bindings }
    }

    #[test]
    fn foreign_function_computes_and_charges_cost() {
        let src = "go(X, Y) :- square(7, X), square(X, Y).";
        let r = run_with(src, "go(X, Y)", MachineConfig::default(), |m| {
            m.register_foreign("square", 2, |args| {
                let v = match &args[0] {
                    Term::Int(i) => *i,
                    other => panic!("bad input {other}"),
                };
                Ok((Term::int(v * v), 500))
            });
        });
        assert_eq!(r.bindings["X"].to_string(), "49");
        assert_eq!(r.bindings["Y"].to_string(), "2401");
        // Two calls at 500 ticks each.
        assert!(r.report.metrics.makespan >= 1000);
    }

    #[test]
    fn foreign_call_waits_for_ground_inputs() {
        let src = r#"
            go(Y) :- square(X, Y), later(X).
            later(X) :- X := 6.
        "#;
        let r = run_with(src, "go(Y)", MachineConfig::default(), |m| {
            m.register_foreign("square", 2, |args| match &args[0] {
                Term::Int(i) => Ok((Term::int(i * i), 1)),
                other => panic!("called with non-ground input {other}"),
            });
        });
        assert_eq!(r.bindings["Y"].to_string(), "36");
        assert!(r.report.metrics.suspensions >= 1);
    }

    #[test]
    fn foreign_handles_structured_terms() {
        let src = "go(N) :- sum_list([1, 2, 3, 4], N).";
        let r = run_with(src, "go(N)", MachineConfig::default(), |m| {
            m.register_foreign("sum_list", 2, |args| {
                let items = args[0].as_proper_list().expect("ground list");
                let mut sum = 0i64;
                for t in items {
                    if let Term::Int(i) = t {
                        sum += i;
                    }
                }
                Ok((Term::int(sum), items_cost(&args[0])))
            });
        });
        assert_eq!(r.bindings["N"].to_string(), "10");

        fn items_cost(t: &Term) -> u64 {
            t.as_proper_list().map(|v| v.len() as u64).unwrap_or(1)
        }
    }

    #[test]
    fn user_rules_shadow_nothing_foreign_wins() {
        // Foreign procedures take precedence over same-named rules, like
        // builtins do; the program's `square/2` rule is never used.
        let src = "square(_, Y) :- Y := wrong. go(Y) :- square(3, Y).";
        let r = run_with(src, "go(Y)", MachineConfig::default(), |m| {
            m.register_foreign("square", 2, |args| match &args[0] {
                Term::Int(i) => Ok((Term::int(i * i), 1)),
                _ => unreachable!(),
            });
        });
        assert_eq!(r.bindings["Y"].to_string(), "9");
    }

    #[test]
    fn foreign_error_reported() {
        let src = "go(Y) :- fail_op(1, Y).";
        let program = parse_program(src).unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut machine = Machine::new(compiled, MachineConfig::default());
        machine.register_foreign("fail_op", 2, |_| {
            Err(strand_core::StrandError::Other("native failure".into()))
        });
        let goal_ast = parse_term("go(Y)").unwrap();
        let mut vars = BTreeMap::new();
        let g = ast_to_term(&goal_ast, &mut machine, &mut vars);
        machine.start(g);
        let err = machine.run().unwrap_err();
        assert!(err.to_string().contains("native failure"));
    }
}
