//! Execution metrics for the simulated multicomputer.
//!
//! Every quantity the paper's qualitative claims refer to is measured here:
//! per-node busy time (load balance, E1), live tracked processes (concurrent
//! node evaluations, E2), the inter-node message matrix with per-functor
//! counts (communication bound, E3), and the virtual-time makespan (speedup,
//! E4).

use std::collections::HashMap;
use strand_core::{Atom, FxHashMap, NodeId, Time};

/// Metrics collected during a run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Reductions performed by each node.
    pub reductions: Vec<u64>,
    /// Virtual time each node spent reducing (excludes idle waiting).
    pub busy: Vec<Time>,
    /// Total process suspensions (dataflow waits).
    pub suspensions: u64,
    /// `messages[from][to]`: cross-node deliveries (spawns + stream sends +
    /// binding notifications).
    pub messages: Vec<Vec<u64>>,
    /// Cross-node stream (port) messages keyed by the message's principal
    /// functor — experiment E3 counts `value` messages here.
    pub port_msgs_by_functor: HashMap<String, u64>,
    /// Total cross-node port messages.
    pub port_msgs_cross: u64,
    /// Total local (same-node) port messages.
    pub port_msgs_local: u64,
    /// Remote process spawns (`Goal@J` with J on another node).
    pub remote_spawns: u64,
    /// Per-node peak of live tracked processes (see
    /// [`MachineConfig::tracked`](crate::MachineConfig)).
    pub peak_tracked: Vec<u64>,
    /// Per-node current live tracked processes (internal gauge).
    pub live_tracked: Vec<u64>,
    /// Per-node peak run-queue length.
    pub peak_queue: Vec<usize>,
    /// Final makespan: the largest node clock when the machine stopped.
    pub makespan: Time,
    /// Total reductions across nodes.
    pub total_reductions: u64,
    /// Named per-node gauges (maximum value seen); fed by the `gauge/2`
    /// builtin. Experiment E2 uses a `pending` gauge for Tree-Reduce-2's
    /// queued-value memory.
    pub gauges: HashMap<String, Vec<u64>>,
    /// Deliveries lost to fault injection (includes sends to dead nodes).
    pub msgs_dropped: u64,
    /// Deliveries duplicated by fault injection.
    pub msgs_duplicated: u64,
    /// Deliveries held up by a delay fault.
    pub msgs_delayed: u64,
    /// Nodes killed by the fault plan during the run.
    pub nodes_crashed: u64,
    /// Worker shards killed by a wall-clock chaos plan (each kill also
    /// bumps `nodes_crashed` once per node the shard owned).
    pub shards_killed: u64,
    /// Outgoing cross-worker batches whose remote spawns were dropped by
    /// chaos injection (the individual spawns count in `msgs_dropped`).
    pub batches_dropped: u64,
    /// Outgoing cross-worker batches whose remote spawns were duplicated by
    /// chaos injection (the individual copies count in `msgs_duplicated`).
    pub batches_duplicated: u64,
    /// Wall-clock nanoseconds of sleep injected into throttled shards'
    /// drain loops by a chaos plan.
    pub throttle_ns: u64,
    /// Supervisor restarts observed: reductions of the Supervise motif's
    /// heartbeat-timeout rule (the `sup_restart/0` builtin). Counted by
    /// every engine, so chaos runs can report recovery activity.
    pub supervisor_restarts: u64,
    /// Rule attempts that ran a full head match (both tiers; excludes rules
    /// skipped by the first-argument index).
    pub rules_tried: u64,
    /// Rules the first-argument index skipped without a match attempt
    /// (compiled tier only).
    pub index_hits: u64,
    /// Rules the index was consulted on but could not rule out (compiled
    /// tier only).
    pub index_misses: u64,
    /// Rule-based reductions dispatched through the compiled tier.
    pub compiled_reductions: u64,
    /// Rule-based reductions dispatched through the reference interpreter.
    pub interpreted_reductions: u64,
    /// Suspensions per procedure name (`Atom` keys keep this off the
    /// allocation hot path: bumping a counter is an `Arc` clone at worst).
    pub susp_by_proc: FxHashMap<Atom, u64>,
    /// Client sessions opened against a resident machine (`strand-serve`).
    pub sessions_opened: u64,
    /// Client sessions closed (and their regions reclaimed).
    pub sessions_closed: u64,
    /// External requests admitted into a resident machine.
    pub requests_admitted: u64,
    /// External requests rejected by backpressure (retry-after issued).
    pub requests_rejected: u64,
    /// Store slots freed by session-region reclamation.
    pub vars_reclaimed: u64,
    /// Times a resident worker reached global quiescence and parked instead
    /// of exiting (the idle-vs-terminated distinction, DESIGN.md §9).
    pub idle_parks: u64,
    /// `after_unless` deadlines registered, on either timer source (virtual
    /// lazy deadlines and wall-clock wheel entries both count).
    pub timers_armed: u64,
    /// Timer deadlines that fired: the cancel flag was still unbound when
    /// the deadline ran, so the timeout value was delivered.
    pub timers_fired: u64,
    /// Timer deadlines cancelled before firing: the cancel flag arrived
    /// first and the deadline evaporated (scheduler filter, wheel prune, or
    /// a fired event that found its flag bound).
    pub timers_cancelled: u64,
    /// Times a parked worker woke because the timer wheel's earliest
    /// deadline fell due (wall-clock source only).
    pub wakes_for_deadline: u64,
    /// Real (wall-clock) duration of the run in nanoseconds. Unlike every
    /// virtual-time metric above this depends on the host; backends fill it
    /// in so B-series experiments can compare engines on the same workload.
    pub wall_ns: u64,
    /// OS worker threads used (1 for the deterministic simulator).
    pub threads_used: u32,
    /// Jobs (reductions + foreign completions) each worker thread processed;
    /// empty for the deterministic simulator.
    pub worker_jobs: Vec<u64>,
}

impl Metrics {
    pub(crate) fn new(nodes: usize) -> Metrics {
        Metrics {
            reductions: vec![0; nodes],
            busy: vec![0; nodes],
            messages: vec![vec![0; nodes]; nodes],
            peak_tracked: vec![0; nodes],
            live_tracked: vec![0; nodes],
            peak_queue: vec![0; nodes],
            ..Default::default()
        }
    }

    pub(crate) fn count_message(&mut self, from: NodeId, to: NodeId) {
        if from != to {
            self.messages[from.0 as usize][to.0 as usize] += 1;
        }
    }

    pub(crate) fn track_spawn(&mut self, node: NodeId) {
        let n = node.0 as usize;
        self.live_tracked[n] += 1;
        if self.live_tracked[n] > self.peak_tracked[n] {
            self.peak_tracked[n] = self.live_tracked[n];
        }
    }

    pub(crate) fn track_done(&mut self, node: NodeId) {
        let n = node.0 as usize;
        debug_assert!(self.live_tracked[n] > 0, "tracked gauge underflow");
        self.live_tracked[n] = self.live_tracked[n].saturating_sub(1);
    }

    pub(crate) fn record_gauge(&mut self, name: &str, node: NodeId, value: u64) {
        let nodes = self.reductions.len();
        let g = self
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| vec![0; nodes]);
        let slot = &mut g[node.0 as usize];
        if value > *slot {
            *slot = value;
        }
    }

    /// Largest value a named gauge reached on any node (0 if never set).
    pub fn max_gauge(&self, name: &str) -> u64 {
        self.gauges
            .get(name)
            .and_then(|g| g.iter().copied().max())
            .unwrap_or(0)
    }

    /// Total cross-node messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().flatten().sum()
    }

    /// Load imbalance: max node busy time divided by mean busy time.
    /// 1.0 is perfect balance; returns `None` when nothing ran.
    pub fn imbalance(&self) -> Option<f64> {
        let max = *self.busy.iter().max()? as f64;
        let sum: u64 = self.busy.iter().sum();
        if sum == 0 {
            return None;
        }
        let mean = sum as f64 / self.busy.len() as f64;
        Some(max / mean)
    }

    /// Busy fraction: total busy time over (nodes × makespan). 1.0 means
    /// every node computed for the whole run.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let sum: u64 = self.busy.iter().sum();
        sum as f64 / (self.makespan as f64 * self.busy.len() as f64)
    }

    /// Largest per-node peak of live tracked processes.
    pub fn max_peak_tracked(&self) -> u64 {
        self.peak_tracked.iter().copied().max().unwrap_or(0)
    }

    /// Fold another worker's metrics into this one (sharded execution).
    /// Counters add; per-node peaks and gauges take maxima. Both are exact,
    /// not approximations: each node's queue, busy time and tracked gauge
    /// live entirely on the worker that owns the node, so for any given
    /// index at most one operand is nonzero.
    pub fn merge(&mut self, other: &Metrics) {
        fn add_vec<T: Copy + std::ops::AddAssign>(a: &mut [T], b: &[T]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        fn max_vec<T: Copy + Ord>(a: &mut [T], b: &[T]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x = (*x).max(*y);
            }
        }
        add_vec(&mut self.reductions, &other.reductions);
        add_vec(&mut self.busy, &other.busy);
        self.suspensions += other.suspensions;
        for (row, orow) in self.messages.iter_mut().zip(&other.messages) {
            add_vec(row, orow);
        }
        for (name, count) in &other.port_msgs_by_functor {
            *self.port_msgs_by_functor.entry(name.clone()).or_insert(0) += count;
        }
        self.port_msgs_cross += other.port_msgs_cross;
        self.port_msgs_local += other.port_msgs_local;
        self.remote_spawns += other.remote_spawns;
        max_vec(&mut self.peak_tracked, &other.peak_tracked);
        add_vec(&mut self.live_tracked, &other.live_tracked);
        max_vec(&mut self.peak_queue, &other.peak_queue);
        self.makespan = self.makespan.max(other.makespan);
        self.total_reductions += other.total_reductions;
        let nodes = self.reductions.len();
        for (name, gauge) in &other.gauges {
            let g = self
                .gauges
                .entry(name.clone())
                .or_insert_with(|| vec![0; nodes]);
            max_vec(g, gauge);
        }
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_delayed += other.msgs_delayed;
        self.nodes_crashed += other.nodes_crashed;
        self.shards_killed += other.shards_killed;
        self.batches_dropped += other.batches_dropped;
        self.batches_duplicated += other.batches_duplicated;
        self.throttle_ns += other.throttle_ns;
        self.supervisor_restarts += other.supervisor_restarts;
        self.rules_tried += other.rules_tried;
        self.index_hits += other.index_hits;
        self.index_misses += other.index_misses;
        self.compiled_reductions += other.compiled_reductions;
        self.interpreted_reductions += other.interpreted_reductions;
        self.sessions_opened += other.sessions_opened;
        self.sessions_closed += other.sessions_closed;
        self.requests_admitted += other.requests_admitted;
        self.requests_rejected += other.requests_rejected;
        self.vars_reclaimed += other.vars_reclaimed;
        self.idle_parks += other.idle_parks;
        self.timers_armed += other.timers_armed;
        self.timers_fired += other.timers_fired;
        self.timers_cancelled += other.timers_cancelled;
        self.wakes_for_deadline += other.wakes_for_deadline;
        for (name, count) in &other.susp_by_proc {
            *self.susp_by_proc.entry(name.clone()).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_computes_max_over_mean() {
        let mut m = Metrics::new(4);
        m.busy = vec![10, 10, 10, 30];
        let imb = m.imbalance().unwrap();
        assert!((imb - 30.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_none_when_idle() {
        let m = Metrics::new(4);
        assert!(m.imbalance().is_none());
    }

    #[test]
    fn message_matrix_ignores_self_sends() {
        let mut m = Metrics::new(2);
        m.count_message(NodeId(0), NodeId(1));
        m.count_message(NodeId(1), NodeId(1));
        assert_eq!(m.total_messages(), 1);
    }

    #[test]
    fn tracked_gauge_peaks() {
        let mut m = Metrics::new(1);
        m.track_spawn(NodeId(0));
        m.track_spawn(NodeId(0));
        m.track_done(NodeId(0));
        m.track_spawn(NodeId(0));
        assert_eq!(m.peak_tracked[0], 2);
        assert_eq!(m.live_tracked[0], 2);
        assert_eq!(m.max_peak_tracked(), 2);
    }

    #[test]
    fn rule_counters_merge_additively() {
        let mut a = Metrics::new(1);
        a.rules_tried = 5;
        a.index_hits = 2;
        a.compiled_reductions = 3;
        a.susp_by_proc.insert(Atom::new("eval"), 4);
        let mut b = Metrics::new(1);
        b.rules_tried = 7;
        b.index_misses = 1;
        b.interpreted_reductions = 2;
        b.susp_by_proc.insert(Atom::new("eval"), 1);
        b.susp_by_proc.insert(Atom::new("reduce"), 6);
        a.merge(&b);
        assert_eq!(a.rules_tried, 12);
        assert_eq!(a.index_hits, 2);
        assert_eq!(a.index_misses, 1);
        assert_eq!(a.compiled_reductions, 3);
        assert_eq!(a.interpreted_reductions, 2);
        assert_eq!(a.susp_by_proc[&Atom::new("eval")], 5);
        assert_eq!(a.susp_by_proc[&Atom::new("reduce")], 6);
    }

    #[test]
    fn chaos_counters_merge_additively() {
        let mut a = Metrics::new(2);
        a.shards_killed = 1;
        a.batches_dropped = 3;
        a.throttle_ns = 500;
        a.supervisor_restarts = 2;
        let mut b = Metrics::new(2);
        b.shards_killed = 1;
        b.batches_duplicated = 4;
        b.throttle_ns = 250;
        b.supervisor_restarts = 1;
        a.merge(&b);
        assert_eq!(a.shards_killed, 2);
        assert_eq!(a.batches_dropped, 3);
        assert_eq!(a.batches_duplicated, 4);
        assert_eq!(a.throttle_ns, 750);
        assert_eq!(a.supervisor_restarts, 3);
    }

    #[test]
    fn serve_counters_merge_additively() {
        let mut a = Metrics::new(2);
        a.sessions_opened = 10;
        a.sessions_closed = 9;
        a.requests_admitted = 40;
        a.vars_reclaimed = 18;
        let mut b = Metrics::new(2);
        b.sessions_opened = 3;
        b.sessions_closed = 4;
        b.requests_rejected = 2;
        b.vars_reclaimed = 7;
        b.idle_parks = 5;
        a.merge(&b);
        assert_eq!(a.sessions_opened, 13);
        assert_eq!(a.sessions_closed, 13);
        assert_eq!(a.requests_admitted, 40);
        assert_eq!(a.requests_rejected, 2);
        assert_eq!(a.vars_reclaimed, 25);
        assert_eq!(a.idle_parks, 5);
    }

    #[test]
    fn timer_counters_merge_additively() {
        let mut a = Metrics::new(2);
        a.timers_armed = 6;
        a.timers_fired = 2;
        a.wakes_for_deadline = 1;
        let mut b = Metrics::new(2);
        b.timers_armed = 4;
        b.timers_fired = 1;
        b.timers_cancelled = 3;
        b.wakes_for_deadline = 2;
        a.merge(&b);
        assert_eq!(a.timers_armed, 10);
        assert_eq!(a.timers_fired, 3);
        assert_eq!(a.timers_cancelled, 3);
        assert_eq!(a.wakes_for_deadline, 3);
    }

    #[test]
    fn utilization_bounds() {
        let mut m = Metrics::new(2);
        m.busy = vec![50, 100];
        m.makespan = 100;
        assert!((m.utilization() - 0.75).abs() < 1e-12);
    }
}
