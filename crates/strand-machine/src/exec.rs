//! The compiled execution tier: rules lowered to direct-threaded code.
//!
//! [`ExecProgram::lower`] translates each [`CompiledRule`]'s `Pat` trees
//! into flat, pre-resolved forms executed without recursion and without
//! per-try allocation:
//!
//! * head patterns become pre-order [`MatchOp`] streams with subtree skip
//!   counts, run against an explicit reusable term stack;
//! * the outermost constructor of each rule's first head pattern becomes an
//!   [`IndexKey`], letting the machine skip rules that cannot possibly
//!   match without attempting them (first-argument clause indexing);
//! * guards become [`GuardOp`]s: a pre-computed set of required slots
//!   checked before any evaluation, plus a specialized evaluator for the
//!   common comparison / equality / type tests (generic over [`StoreOps`],
//!   so both `Store` and the striped `SharedStore` monomorphize to the same
//!   fast path);
//! * body goals become [`Tmpl`] templates whose ground subtrees are
//!   pre-built `Term`s shared by every instantiation — match and
//!   instantiate are fused through one slot [`Frame`] with no intermediate
//!   structure rebuilt per reduction.
//!
//! The interpreter in `machine.rs` remains the semantic reference. This
//! module must be *observably identical* to it: same suspension variable
//! sets in the same order, same fresh-variable allocation order, same
//! errors surfaced at the same time. The conformance suite diffs the two
//! tiers bit-for-bit (see `tests/conformance.rs`).

use std::sync::Arc;

use strand_core::arith::Evaled;
use strand_core::matching::{term_eq, EqOutcome};
use strand_core::{
    eval_arith, eval_guard, Atom, Frame, FxHashMap, GuardOutcome, Num, Pat, Store, StoreOps,
    StrandResult, Term, VarId,
};
use strand_parse::{CompiledProgram, CompiledRule};

fn push_unique(vs: &mut Vec<VarId>, v: VarId) {
    if !vs.contains(&v) {
        vs.push(v);
    }
}

// ---------------------------------------------------------------------------
// Scratch buffers
// ---------------------------------------------------------------------------

/// Reusable per-machine buffers for the reduction hot path. Under the
/// parallel backend each shard's `Machine` owns its own `Scratch`, so no
/// reduction allocates a fresh `Frame` or `Vec` per rule try.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Rule-local slot bindings, reset (capacity kept) per rule attempt.
    pub frame: Frame,
    /// Suspension variables accumulated across a goal's rule attempts.
    pub pending: Vec<VarId>,
    /// Suspension variables of the current rule attempt only.
    pub rule_pending: Vec<VarId>,
    /// Explicit term stack driving [`run_match`].
    pub stack: Vec<Term>,
}

// ---------------------------------------------------------------------------
// First-argument clause indexing
// ---------------------------------------------------------------------------

/// The outermost constructor of a rule's first head pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexKey {
    Int(i64),
    Float(f64),
    Atom(Atom),
    Str(Arc<str>),
    Nil,
    Cons,
    Tuple(Atom, usize),
}

impl IndexKey {
    /// The key of a first head pattern, or `None` when the rule must never
    /// be index-filtered (variable or wildcard heads match anything).
    pub fn of(head0: &Pat) -> Option<IndexKey> {
        match head0 {
            Pat::Local(_) | Pat::Wild => None,
            Pat::Int(i) => Some(IndexKey::Int(*i)),
            Pat::Float(x) => Some(IndexKey::Float(*x)),
            Pat::Atom(a) => Some(IndexKey::Atom(a.clone())),
            Pat::Str(s) => Some(IndexKey::Str(s.clone())),
            Pat::Nil => Some(IndexKey::Nil),
            Pat::List(_) => Some(IndexKey::Cons),
            Pat::Tuple(name, args) => Some(IndexKey::Tuple(name.clone(), args.len())),
        }
    }

    /// Whether a goal whose *dereferenced* first argument is `arg` could
    /// possibly match a head with this key. `false` only when the match is
    /// certain to fail at the first argument: an unbound goal variable
    /// always admits (the rule must get its chance to suspend on it), and
    /// int/float keys admit cross-type numeric equality, mirroring
    /// `match_one`.
    pub fn admits(&self, arg: &Term) -> bool {
        match arg {
            Term::Var(_) => true,
            Term::Int(i) => {
                matches!(self, IndexKey::Int(j) if j == i)
                    || matches!(self, IndexKey::Float(x) if *x == *i as f64)
            }
            Term::Float(x) => {
                matches!(self, IndexKey::Float(y) if y == x)
                    || matches!(self, IndexKey::Int(j) if *x == *j as f64)
            }
            Term::Atom(a) => matches!(self, IndexKey::Atom(b) if b == a),
            Term::Str(s) => matches!(self, IndexKey::Str(t) if t == s),
            Term::Nil => matches!(self, IndexKey::Nil),
            Term::List(_) => matches!(self, IndexKey::Cons),
            Term::Tuple(name, args) => {
                matches!(self, IndexKey::Tuple(n, a) if n == name && *a == args.len())
            }
            Term::Port(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Head matching ops
// ---------------------------------------------------------------------------

/// One step of a flattened head pattern, visited in pre-order. Each op
/// consumes exactly one term from the stack; structural ops push their
/// children (right-to-left, so the left child is popped first) and carry
/// the op count of their subtree so a suspension on an unbound goal
/// variable can skip it.
#[derive(Clone, Debug)]
pub enum MatchOp {
    /// Rule-local slot: set on first sight, compare (`term_eq`) on repeats.
    /// The set/compare decision is dynamic because a suspension-skipped
    /// subtree may leave the textually-first occurrence unset.
    Slot(u16),
    /// `_`: matches anything.
    Wild,
    Int(i64),
    Float(f64),
    Atom(Atom),
    Str(Arc<str>),
    Nil,
    /// `name(…)` with `arity` children lowered into the next `skip` ops.
    Tuple {
        name: Atom,
        arity: usize,
        skip: usize,
    },
    /// `[H|T]` with both children lowered into the next `skip` ops.
    Cons {
        skip: usize,
    },
}

fn lower_match(p: &Pat, out: &mut Vec<MatchOp>) {
    match p {
        Pat::Local(i) => out.push(MatchOp::Slot(*i)),
        Pat::Wild => out.push(MatchOp::Wild),
        Pat::Int(i) => out.push(MatchOp::Int(*i)),
        Pat::Float(x) => out.push(MatchOp::Float(*x)),
        Pat::Atom(a) => out.push(MatchOp::Atom(a.clone())),
        Pat::Str(s) => out.push(MatchOp::Str(s.clone())),
        Pat::Nil => out.push(MatchOp::Nil),
        Pat::Tuple(name, args) => {
            let at = out.len();
            out.push(MatchOp::Tuple {
                name: name.clone(),
                arity: args.len(),
                skip: 0,
            });
            for a in args.iter() {
                lower_match(a, out);
            }
            let n = out.len() - at - 1;
            if let MatchOp::Tuple { skip, .. } = &mut out[at] {
                *skip = n;
            }
        }
        Pat::List(cell) => {
            let at = out.len();
            out.push(MatchOp::Cons { skip: 0 });
            lower_match(&cell.0, out);
            lower_match(&cell.1, out);
            let n = out.len() - at - 1;
            if let MatchOp::Cons { skip } = &mut out[at] {
                *skip = n;
            }
        }
    }
}

/// Run a rule's match ops over the goal arguments. Returns `false` on a
/// definitive mismatch; on `true`, an empty `pending` means the head
/// matched and `frame` holds the bindings, a non-empty one lists the goal
/// variables the rule must wait for (in the interpreter's collection
/// order).
pub fn run_match<S: StoreOps>(
    ops: &[MatchOp],
    args: &[Term],
    store: &S,
    frame: &mut Frame,
    pending: &mut Vec<VarId>,
    stack: &mut Vec<Term>,
) -> bool {
    stack.clear();
    stack.extend(args.iter().rev().cloned());
    let mut pc = 0;
    while pc < ops.len() {
        let op = &ops[pc];
        pc += 1;
        let t = stack.pop().expect("op stream aligned with term stream");
        let g = store.deref(&t);
        match op {
            MatchOp::Wild => {}
            MatchOp::Slot(i) => {
                let slot = &mut frame.slots[*i as usize];
                match slot {
                    None => *slot = Some(g),
                    Some(prev) => match term_eq(prev, &g, store) {
                        EqOutcome::Eq => {}
                        EqOutcome::Neq => return false,
                        EqOutcome::Unknown(vs) => {
                            for v in vs {
                                push_unique(pending, v);
                            }
                        }
                    },
                }
            }
            MatchOp::Int(j) => match &g {
                Term::Var(v) => push_unique(pending, *v),
                Term::Int(i) if i == j => {}
                Term::Float(x) if *x == *j as f64 => {}
                _ => return false,
            },
            MatchOp::Float(y) => match &g {
                Term::Var(v) => push_unique(pending, *v),
                Term::Float(x) if x == y => {}
                Term::Int(i) if *y == *i as f64 => {}
                _ => return false,
            },
            MatchOp::Atom(b) => match &g {
                Term::Var(v) => push_unique(pending, *v),
                Term::Atom(a) if a == b => {}
                _ => return false,
            },
            MatchOp::Str(u) => match &g {
                Term::Var(v) => push_unique(pending, *v),
                Term::Str(s) if s == u => {}
                _ => return false,
            },
            MatchOp::Nil => match &g {
                Term::Var(v) => push_unique(pending, *v),
                Term::Nil => {}
                _ => return false,
            },
            MatchOp::Tuple { name, arity, skip } => match &g {
                Term::Var(v) => {
                    push_unique(pending, *v);
                    pc += skip;
                }
                Term::Tuple(n, a) if n == name && a.len() == *arity => {
                    stack.extend(a.iter().rev().cloned());
                }
                _ => return false,
            },
            MatchOp::Cons { skip } => match &g {
                Term::Var(v) => {
                    push_unique(pending, *v);
                    pc += skip;
                }
                Term::List(cell) => {
                    stack.push(cell.1.clone());
                    stack.push(cell.0.clone());
                }
                _ => return false,
            },
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Body templates
// ---------------------------------------------------------------------------

/// A body/placement template. Unlike `Pat`, ground subtrees are pre-built
/// terms cloned in O(1) per instantiation (interior `Arc`s).
#[derive(Clone, Debug)]
pub enum Tmpl {
    Slot(u16),
    Wild,
    /// Pre-built ground subtree shared by every instantiation.
    Const(Term),
    Tuple(Atom, Box<[Tmpl]>),
    Cons(Box<(Tmpl, Tmpl)>),
}

impl Tmpl {
    /// Build a term, allocating fresh store variables for unset slots and
    /// wildcards in the same depth-first left-to-right order as
    /// `Pat::instantiate` — ground subtrees allocate nothing, so skipping
    /// them preserves the allocation sequence exactly.
    pub fn build<S: StoreOps>(&self, frame: &mut Frame, store: &mut S) -> Term {
        match self {
            Tmpl::Slot(i) => {
                let slot = &mut frame.slots[*i as usize];
                match slot {
                    Some(t) => t.clone(),
                    None => {
                        let v = Term::Var(store.new_var());
                        *slot = Some(v.clone());
                        v
                    }
                }
            }
            Tmpl::Wild => Term::Var(store.new_var()),
            Tmpl::Const(t) => t.clone(),
            Tmpl::Tuple(name, args) => Term::tuple(
                name.clone(),
                args.iter().map(|a| a.build(frame, store)).collect(),
            ),
            Tmpl::Cons(cell) => Term::cons(cell.0.build(frame, store), cell.1.build(frame, store)),
        }
    }

    /// Read-only build: `None` on an unset slot or a wildcard (mirrors
    /// `Pat::instantiate_ro`).
    pub fn build_ro(&self, frame: &Frame) -> Option<Term> {
        match self {
            Tmpl::Slot(i) => frame.get(*i).cloned(),
            Tmpl::Wild => None,
            Tmpl::Const(t) => Some(t.clone()),
            Tmpl::Tuple(name, args) => {
                let args: Option<Vec<Term>> = args.iter().map(|a| a.build_ro(frame)).collect();
                Some(Term::tuple(name.clone(), args?))
            }
            Tmpl::Cons(cell) => Some(Term::cons(cell.0.build_ro(frame)?, cell.1.build_ro(frame)?)),
        }
    }
}

/// The ground term a pattern denotes, if it contains no slots or wildcards.
fn pat_ground_term(p: &Pat) -> Option<Term> {
    Some(match p {
        Pat::Local(_) | Pat::Wild => return None,
        Pat::Int(i) => Term::Int(*i),
        Pat::Float(x) => Term::Float(*x),
        Pat::Atom(a) => Term::Atom(a.clone()),
        Pat::Str(s) => Term::Str(s.clone()),
        Pat::Nil => Term::Nil,
        Pat::Tuple(name, args) => {
            let args: Option<Vec<Term>> = args.iter().map(pat_ground_term).collect();
            Term::tuple(name.clone(), args?)
        }
        Pat::List(cell) => Term::cons(pat_ground_term(&cell.0)?, pat_ground_term(&cell.1)?),
    })
}

fn lower_tmpl(p: &Pat) -> Tmpl {
    if let Some(t) = pat_ground_term(p) {
        return Tmpl::Const(t);
    }
    match p {
        Pat::Local(i) => Tmpl::Slot(*i),
        Pat::Wild => Tmpl::Wild,
        Pat::Tuple(name, args) => Tmpl::Tuple(name.clone(), args.iter().map(lower_tmpl).collect()),
        Pat::List(cell) => Tmpl::Cons(Box::new((lower_tmpl(&cell.0), lower_tmpl(&cell.1)))),
        // Constant leaves are ground and returned above.
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

/// A lowered guard test.
#[derive(Clone, Debug)]
pub struct GuardOp {
    /// Slots the guard reads. If any is still unset the rule fails — the
    /// interpreter's `instantiate_ro == None` case — *before* any operand
    /// is evaluated, so no error the interpreter would not surface can leak
    /// out of a specialized evaluator.
    needs: Box<[u16]>,
    kind: GuardKind,
}

#[derive(Clone, Debug)]
enum GuardKind {
    /// `true`.
    True,
    /// The guard pattern contains `_` and can never be instantiated
    /// read-only: the interpreter always fails such a rule.
    AlwaysFail,
    /// `< > =< >=`.
    Cmp {
        op: CmpOp,
        lhs: ArithOperand,
        rhs: ArithOperand,
    },
    /// `==` / `=\=`.
    Eq {
        positive: bool,
        lhs: TermOperand,
        rhs: TermOperand,
    },
    /// `integer/1 float/1 number/1 atom/1 string/1 list/1 tuple/1 data/1`.
    Type { test: TypeTest, arg: TermOperand },
    /// Nonmonotonic `unknown/1`: true iff currently unbound, never
    /// suspends.
    Unknown { arg: TermOperand },
    /// Anything else — including unknown guard names, whose `BadBuiltin`
    /// error must surface only if the guard is actually evaluated: fall
    /// back to the interpreter's instantiate-then-eval path.
    Other(Pat),
}

#[derive(Clone, Copy, Debug)]
enum CmpOp {
    Lt,
    Gt,
    Le,
    Ge,
}

#[derive(Clone, Copy, Debug)]
enum TypeTest {
    Integer,
    Float,
    Number,
    Atom,
    Str,
    List,
    Tuple,
    Data,
}

/// An arithmetic comparison operand.
#[derive(Clone, Debug)]
enum ArithOperand {
    /// A bare rule-local: evaluate the slot's term.
    Slot(u16),
    /// Ground expression pre-folded to a number at lowering time.
    Num(Num),
    /// Ground expression that does not fold cleanly (a type error or
    /// division by zero): kept as a term so the runtime error is identical
    /// to the interpreter's, and only raised if the guard is reached.
    Term(Term),
    /// Non-ground expression rebuilt from slots per evaluation.
    Tmpl(Tmpl),
}

/// A term-valued operand (equality and type-test guards).
#[derive(Clone, Debug)]
enum TermOperand {
    Slot(u16),
    Const(Term),
    Tmpl(Tmpl),
}

fn pat_slots(p: &Pat, out: &mut Vec<u16>) {
    match p {
        Pat::Local(i) if !out.contains(i) => out.push(*i),
        Pat::Local(_) => {}
        Pat::Tuple(_, args) => {
            for a in args.iter() {
                pat_slots(a, out);
            }
        }
        Pat::List(cell) => {
            pat_slots(&cell.0, out);
            pat_slots(&cell.1, out);
        }
        _ => {}
    }
}

fn pat_has_wild(p: &Pat) -> bool {
    match p {
        Pat::Wild => true,
        Pat::Tuple(_, args) => args.iter().any(pat_has_wild),
        Pat::List(cell) => pat_has_wild(&cell.0) || pat_has_wild(&cell.1),
        _ => false,
    }
}

fn lower_arith_operand(p: &Pat) -> ArithOperand {
    if let Some(t) = pat_ground_term(p) {
        return match eval_arith(&t, &Store::new()) {
            Ok(Evaled::Num(n)) => ArithOperand::Num(n),
            _ => ArithOperand::Term(t),
        };
    }
    match p {
        Pat::Local(i) => ArithOperand::Slot(*i),
        _ => ArithOperand::Tmpl(lower_tmpl(p)),
    }
}

fn lower_term_operand(p: &Pat) -> TermOperand {
    if let Some(t) = pat_ground_term(p) {
        return TermOperand::Const(t);
    }
    match p {
        Pat::Local(i) => TermOperand::Slot(*i),
        _ => TermOperand::Tmpl(lower_tmpl(p)),
    }
}

fn lower_guard(p: &Pat) -> GuardOp {
    let mut needs = Vec::new();
    pat_slots(p, &mut needs);
    let needs = needs.into_boxed_slice();
    if pat_has_wild(p) {
        return GuardOp {
            needs,
            kind: GuardKind::AlwaysFail,
        };
    }
    let cmp = |op: CmpOp, args: &[Pat]| GuardKind::Cmp {
        op,
        lhs: lower_arith_operand(&args[0]),
        rhs: lower_arith_operand(&args[1]),
    };
    let ty = |test: TypeTest, args: &[Pat]| GuardKind::Type {
        test,
        arg: lower_term_operand(&args[0]),
    };
    let kind = match p {
        Pat::Atom(a) if a.as_str() == "true" => GuardKind::True,
        Pat::Tuple(name, args) => match (name.as_str(), args.len()) {
            ("<", 2) => cmp(CmpOp::Lt, args),
            (">", 2) => cmp(CmpOp::Gt, args),
            ("=<", 2) => cmp(CmpOp::Le, args),
            (">=", 2) => cmp(CmpOp::Ge, args),
            ("==", 2) | ("=\\=", 2) => GuardKind::Eq {
                positive: name.as_str() == "==",
                lhs: lower_term_operand(&args[0]),
                rhs: lower_term_operand(&args[1]),
            },
            ("integer", 1) => ty(TypeTest::Integer, args),
            ("float", 1) => ty(TypeTest::Float, args),
            ("number", 1) => ty(TypeTest::Number, args),
            ("atom", 1) => ty(TypeTest::Atom, args),
            ("string", 1) => ty(TypeTest::Str, args),
            ("list", 1) => ty(TypeTest::List, args),
            ("tuple", 1) => ty(TypeTest::Tuple, args),
            ("data", 1) => ty(TypeTest::Data, args),
            ("unknown", 1) => GuardKind::Unknown {
                arg: lower_term_operand(&args[0]),
            },
            _ => GuardKind::Other(p.clone()),
        },
        _ => GuardKind::Other(p.clone()),
    };
    GuardOp { needs, kind }
}

enum GuardStep {
    Pass,
    Fail,
    /// Variables already merged into the caller's pending set.
    Suspend,
}

fn eval_operand<S: StoreOps>(op: &ArithOperand, frame: &Frame, store: &S) -> StrandResult<Evaled> {
    match op {
        ArithOperand::Slot(i) => eval_arith(frame.get(*i).expect("needs-checked"), store),
        ArithOperand::Num(n) => Ok(Evaled::Num(*n)),
        ArithOperand::Term(t) => eval_arith(t, store),
        ArithOperand::Tmpl(t) => {
            let term = t
                .build_ro(frame)
                .expect("needs-checked, wilds lowered to AlwaysFail");
            eval_arith(&term, store)
        }
    }
}

fn materialize(op: &TermOperand, frame: &Frame) -> Term {
    match op {
        TermOperand::Slot(i) => frame.get(*i).expect("needs-checked").clone(),
        TermOperand::Const(t) => t.clone(),
        TermOperand::Tmpl(t) => t
            .build_ro(frame)
            .expect("needs-checked, wilds lowered to AlwaysFail"),
    }
}

fn eval_guard_op<S: StoreOps>(
    g: &GuardOp,
    frame: &Frame,
    store: &S,
    pending: &mut Vec<VarId>,
) -> StrandResult<GuardStep> {
    if g.needs.iter().any(|i| frame.get(*i).is_none()) {
        return Ok(GuardStep::Fail);
    }
    match &g.kind {
        GuardKind::True => Ok(GuardStep::Pass),
        GuardKind::AlwaysFail => Ok(GuardStep::Fail),
        GuardKind::Cmp { op, lhs, rhs } => {
            let l = eval_operand(lhs, frame, store)?;
            let r = eval_operand(rhs, frame, store)?;
            match (l, r) {
                (Evaled::Num(a), Evaled::Num(b)) => {
                    let (a, b) = (a.as_f64(), b.as_f64());
                    let ok = match op {
                        CmpOp::Lt => a < b,
                        CmpOp::Gt => a > b,
                        CmpOp::Le => a <= b,
                        CmpOp::Ge => a >= b,
                    };
                    Ok(if ok { GuardStep::Pass } else { GuardStep::Fail })
                }
                (l, r) => {
                    if let Evaled::Suspend(vs) = l {
                        for v in vs {
                            push_unique(pending, v);
                        }
                    }
                    if let Evaled::Suspend(vs) = r {
                        for v in vs {
                            push_unique(pending, v);
                        }
                    }
                    Ok(GuardStep::Suspend)
                }
            }
        }
        GuardKind::Eq { positive, lhs, rhs } => {
            let a = materialize(lhs, frame);
            let b = materialize(rhs, frame);
            match term_eq(&a, &b, store) {
                EqOutcome::Eq => Ok(if *positive {
                    GuardStep::Pass
                } else {
                    GuardStep::Fail
                }),
                EqOutcome::Neq => Ok(if *positive {
                    GuardStep::Fail
                } else {
                    GuardStep::Pass
                }),
                EqOutcome::Unknown(vs) => {
                    for v in vs {
                        push_unique(pending, v);
                    }
                    Ok(GuardStep::Suspend)
                }
            }
        }
        GuardKind::Type { test, arg } => {
            let t = store.deref(&materialize(arg, frame));
            if let Term::Var(v) = t {
                push_unique(pending, v);
                return Ok(GuardStep::Suspend);
            }
            let ok = match test {
                TypeTest::Integer => matches!(t, Term::Int(_)),
                TypeTest::Float => matches!(t, Term::Float(_)),
                TypeTest::Number => t.is_number(),
                TypeTest::Atom => matches!(t, Term::Atom(_)),
                TypeTest::Str => matches!(t, Term::Str(_)),
                TypeTest::List => matches!(t, Term::List(_) | Term::Nil),
                TypeTest::Tuple => matches!(t, Term::Tuple(_, _)),
                TypeTest::Data => true,
            };
            Ok(if ok { GuardStep::Pass } else { GuardStep::Fail })
        }
        GuardKind::Unknown { arg } => {
            let t = store.deref(&materialize(arg, frame));
            Ok(if t.is_var() {
                GuardStep::Pass
            } else {
                GuardStep::Fail
            })
        }
        GuardKind::Other(pat) => {
            let Some(gterm) = pat.instantiate_ro(frame) else {
                return Ok(GuardStep::Fail);
            };
            match eval_guard(&gterm, store)? {
                GuardOutcome::True => Ok(GuardStep::Pass),
                GuardOutcome::False => Ok(GuardStep::Fail),
                GuardOutcome::Suspend(vs) => {
                    for v in vs {
                        push_unique(pending, v);
                    }
                    Ok(GuardStep::Suspend)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rules, procedures, program
// ---------------------------------------------------------------------------

/// A lowered body call.
#[derive(Clone, Debug)]
pub struct ExecCall {
    pub goal: Tmpl,
    /// `Some(expr)` for `Goal@expr` placements.
    pub placement: Option<Tmpl>,
}

/// A rule lowered to direct-threaded form.
#[derive(Clone, Debug)]
pub struct ExecRule {
    /// First-argument index key; `None` = the rule is never filtered.
    pub key: Option<IndexKey>,
    pub ops: Box<[MatchOp]>,
    pub guards: Box<[GuardOp]>,
    pub body: Box<[ExecCall]>,
    pub n_locals: u16,
}

/// A lowered procedure.
#[derive(Clone, Debug)]
pub struct ExecProc {
    pub name: Atom,
    pub arity: usize,
    /// Non-`otherwise` rules, in source order.
    pub rules: Box<[ExecRule]>,
    /// The first `otherwise` rule, if any — the machine only ever tries the
    /// first, matching the interpreter.
    pub otherwise: Option<Box<ExecRule>>,
    /// At least one rule carries an index key, so dereferencing the first
    /// argument up front can pay off.
    pub indexed: bool,
}

/// A whole program in lowered form, keyed for allocation-free lookup.
#[derive(Clone, Debug, Default)]
pub struct ExecProgram {
    procs: FxHashMap<Atom, Vec<ExecProc>>,
}

impl ExecProgram {
    /// Lower every procedure of a compiled program.
    pub fn lower(program: &CompiledProgram) -> ExecProgram {
        let mut out = ExecProgram::default();
        for proc in program.procs() {
            let lowered = lower_proc(proc.name.as_str(), proc.arity, &proc.rules);
            out.procs
                .entry(lowered.name.clone())
                .or_default()
                .push(lowered);
        }
        out
    }

    /// Look up a procedure by name and arity without allocating.
    pub fn get(&self, name: &str, arity: usize) -> Option<&ExecProc> {
        self.procs.get(name)?.iter().find(|p| p.arity == arity)
    }
}

/// Derive an index key from a leading `Arg == const` guard.
///
/// Guard-dispatched tables — `p(K, …) :- K == 3 | …` with a bare-variable
/// head — are how motif programs encode decision tables, and without help
/// every clause pays a full match-plus-guard evaluation per goal. When the
/// first head argument is pinned to a ground constant by the rule's *first*
/// guard, the rule admits exactly the same goals as one with that constant
/// in head position, so it can ride the first-argument index.
///
/// Exactness demands two conditions:
/// * the head must be a pure binder — pairwise-distinct fresh variables or
///   wildcards only — so matching can neither fail nor suspend and the
///   first guard really is the rule's first chance to reject a goal;
/// * the `==` guard must be the first guard, so no earlier guard can
///   suspend before the rejection. The guard itself never suspends when
///   the argument is bound (the other side is ground), and an unbound
///   argument always admits.
fn guard_derived_key(rule: &CompiledRule) -> Option<IndexKey> {
    let mut seen: Vec<u16> = Vec::new();
    for h in &rule.head {
        match h {
            Pat::Wild => {}
            Pat::Local(i) => {
                if seen.contains(i) {
                    return None;
                }
                seen.push(*i);
            }
            _ => return None,
        }
    }
    let slot = match rule.head.first()? {
        Pat::Local(i) => *i,
        _ => return None,
    };
    let args = match rule.guards.first()? {
        Pat::Tuple(n, args) if n.as_str() == "==" && args.len() == 2 => args,
        _ => return None,
    };
    let is_slot = |p: &Pat| matches!(p, Pat::Local(j) if *j == slot);
    let const_key = |p: &Pat| match p {
        Pat::Int(i) => Some(IndexKey::Int(*i)),
        Pat::Float(x) => Some(IndexKey::Float(*x)),
        Pat::Atom(a) => Some(IndexKey::Atom(a.clone())),
        Pat::Str(s) => Some(IndexKey::Str(s.clone())),
        Pat::Nil => Some(IndexKey::Nil),
        _ => None,
    };
    if is_slot(&args[0]) {
        const_key(&args[1])
    } else if is_slot(&args[1]) {
        const_key(&args[0])
    } else {
        None
    }
}

fn lower_rule(rule: &CompiledRule) -> ExecRule {
    let key = rule
        .head
        .first()
        .and_then(IndexKey::of)
        .or_else(|| guard_derived_key(rule));
    let mut ops = Vec::new();
    for h in &rule.head {
        lower_match(h, &mut ops);
    }
    ExecRule {
        key,
        ops: ops.into_boxed_slice(),
        guards: rule.guards.iter().map(lower_guard).collect(),
        body: rule
            .body
            .iter()
            .map(|c| ExecCall {
                goal: lower_tmpl(&c.goal),
                placement: c.placement.as_ref().map(lower_tmpl),
            })
            .collect(),
        n_locals: rule.n_locals,
    }
}

fn lower_proc(name: &str, arity: usize, rules: &[CompiledRule]) -> ExecProc {
    let mut lowered = Vec::new();
    let mut otherwise = None;
    for r in rules {
        if r.otherwise {
            if otherwise.is_none() {
                otherwise = Some(Box::new(lower_rule(r)));
            }
        } else {
            lowered.push(lower_rule(r));
        }
    }
    let indexed = lowered.iter().any(|r| r.key.is_some());
    ExecProc {
        name: Atom::new(name),
        arity,
        rules: lowered.into_boxed_slice(),
        otherwise,
        indexed,
    }
}

// ---------------------------------------------------------------------------
// Rule attempt
// ---------------------------------------------------------------------------

/// Outcome of one compiled rule attempt. On `Suspend` the variables are in
/// `scratch.rule_pending`; on `Commit` the bindings are in `scratch.frame`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TryResult {
    Commit,
    Fail,
    Suspend,
}

/// Attempt one lowered rule: match the head, then evaluate the guards.
/// Mirrors the interpreter's `Machine::try_rule` exactly, including the
/// rule that a match-time suspension returns before any guard runs.
pub fn try_rule<S: StoreOps>(
    rule: &ExecRule,
    args: &[Term],
    store: &S,
    scratch: &mut Scratch,
) -> StrandResult<TryResult> {
    scratch.rule_pending.clear();
    scratch.frame.reset(rule.n_locals);
    if !run_match(
        &rule.ops,
        args,
        store,
        &mut scratch.frame,
        &mut scratch.rule_pending,
        &mut scratch.stack,
    ) {
        return Ok(TryResult::Fail);
    }
    if !scratch.rule_pending.is_empty() {
        return Ok(TryResult::Suspend);
    }
    for g in rule.guards.iter() {
        match eval_guard_op(g, &scratch.frame, store, &mut scratch.rule_pending)? {
            GuardStep::Pass => {}
            GuardStep::Fail => return Ok(TryResult::Fail),
            GuardStep::Suspend => {}
        }
    }
    if scratch.rule_pending.is_empty() {
        Ok(TryResult::Commit)
    } else {
        Ok(TryResult::Suspend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strand_core::matching::{match_args, MatchOutcome};
    use strand_core::{NodeId, Store};
    use strand_parse::{compile_program, parse_program};

    fn lower_first_rule(src: &str, name: &str, arity: usize) -> ExecRule {
        let p = compile_program(&parse_program(src).unwrap()).unwrap();
        lower_rule(&p.get(name, arity).unwrap().rules[0])
    }

    fn attempt(rule: &ExecRule, args: &[Term], store: &Store) -> (TryResult, Vec<VarId>) {
        let mut scratch = Scratch::default();
        let r = try_rule(rule, args, store, &mut scratch).unwrap();
        (r, scratch.rule_pending.clone())
    }

    // -- first-argument indexing ------------------------------------------

    #[test]
    fn var_headed_first_args_have_no_key() {
        let r = lower_first_rule("f(X, Y) :- g(X, Y).", "f", 2);
        assert_eq!(r.key, None);
        let r = lower_first_rule("f(_, Y) :- g(Y).", "f", 2);
        assert_eq!(r.key, None);
    }

    #[test]
    fn zero_arity_rules_have_no_key() {
        let r = lower_first_rule("boot :- go(1).", "boot", 0);
        assert_eq!(r.key, None);
    }

    #[test]
    fn constructor_keys_and_admission() {
        let r = lower_first_rule("f([H|T]) :- g(H, T).", "f", 1);
        let key = r.key.clone().unwrap();
        assert_eq!(key, IndexKey::Cons);
        assert!(key.admits(&Term::cons(Term::int(1), Term::Nil)));
        assert!(!key.admits(&Term::Nil));
        // An unbound goal variable must never be filtered out: the rule has
        // to get its chance to *suspend* on it.
        assert!(key.admits(&Term::Var(VarId(7))));

        let r = lower_first_rule("g(probe(K)) :- h(K).", "g", 1);
        let key = r.key.clone().unwrap();
        assert_eq!(key, IndexKey::Tuple(Atom::new("probe"), 1));
        assert!(key.admits(&Term::tuple("probe", vec![Term::int(1)])));
        assert!(!key.admits(&Term::tuple("probe", vec![Term::int(1), Term::int(2)])));
        assert!(!key.admits(&Term::atom("probe")));
    }

    #[test]
    fn numeric_keys_admit_cross_type_equality() {
        // match_one lets Pat::Int(0) match Term::Float(0.0) and vice versa;
        // the index must not be stricter than the match.
        let r = lower_first_rule("f(0) :- g.", "f", 1);
        let key = r.key.clone().unwrap();
        assert!(key.admits(&Term::int(0)));
        assert!(key.admits(&Term::float(0.0)));
        assert!(!key.admits(&Term::float(0.5)));
        let r = lower_first_rule("f(2.0) :- g.", "f", 1);
        let key = r.key.clone().unwrap();
        assert!(key.admits(&Term::int(2)));
        assert!(!key.admits(&Term::int(3)));
    }

    #[test]
    fn ports_admit_nothing() {
        let r = lower_first_rule("f(a) :- g.", "f", 1);
        assert!(!r.key.clone().unwrap().admits(&Term::Port(3)));
    }

    #[test]
    fn otherwise_rules_are_segregated() {
        let p = compile_program(
            &parse_program("f(X) :- X > 0 | pos.\nf(_) :- otherwise | neg.").unwrap(),
        )
        .unwrap();
        let proc = p.get("f", 1).unwrap();
        let lowered = lower_proc("f", 1, &proc.rules);
        assert_eq!(lowered.rules.len(), 1);
        assert!(lowered.otherwise.is_some());
    }

    // -- match op execution vs the interpreter ----------------------------

    fn assert_same_as_interpreter(src: &str, name: &str, args: &[Term], store: &Store) {
        let p = compile_program(&parse_program(src).unwrap()).unwrap();
        let rule = &p.get(name, args.len()).unwrap().rules[0];
        let exec = lower_rule(rule);
        let mut frame = Frame::with_locals(rule.n_locals);
        let interp = match_args(args, &rule.head, store, &mut frame);
        let mut scratch = Scratch::default();
        scratch.frame.reset(rule.n_locals);
        let ok = run_match(
            &exec.ops,
            args,
            store,
            &mut scratch.frame,
            &mut scratch.rule_pending,
            &mut scratch.stack,
        );
        match interp {
            MatchOutcome::Fail => assert!(!ok, "{src}: interpreter failed, compiled did not"),
            MatchOutcome::Match => {
                assert!(ok && scratch.rule_pending.is_empty(), "{src}: should match");
                assert_eq!(frame.slots, scratch.frame.slots, "{src}: frames diverge");
            }
            MatchOutcome::Suspend(vs) => {
                assert!(ok, "{src}: interpreter suspended, compiled failed");
                assert_eq!(vs, scratch.rule_pending, "{src}: suspension sets diverge");
            }
        }
    }

    #[test]
    fn compiled_match_mirrors_interpreter() {
        let mut store = Store::new();
        let v = store.new_var();
        let cases: Vec<(&str, &str, Vec<Term>)> = vec![
            (
                "f(tree(L, R), A) :- g(L, R, A).",
                "f",
                vec![
                    Term::tuple("tree", vec![Term::int(1), Term::int(2)]),
                    Term::atom("x"),
                ],
            ),
            (
                "f(tree(L, R), A) :- g(L, R, A).",
                "f",
                vec![Term::Var(v), Term::atom("x")],
            ),
            ("f([H|T]) :- g(H, T).", "f", vec![Term::Nil]),
            (
                "f([H|T]) :- g(H, T).",
                "f",
                vec![Term::cons(Term::Var(v), Term::Nil)],
            ),
            ("f(1, 2.0) :- g.", "f", vec![Term::int(1), Term::int(2)]),
            ("f(1, 2.0) :- g.", "f", vec![Term::float(1.0), Term::Var(v)]),
            ("f(X, X) :- g(X).", "f", vec![Term::int(1), Term::int(1)]),
            ("f(X, X) :- g(X).", "f", vec![Term::int(1), Term::int(2)]),
            ("f(X, X) :- g(X).", "f", vec![Term::int(1), Term::Var(v)]),
        ];
        for (src, name, args) in cases {
            assert_same_as_interpreter(src, name, &args, &store);
        }
    }

    #[test]
    fn suspension_skipped_subtree_leaves_later_occurrence_to_set() {
        // Head f(g(X), X) against goal f(V, 5) with V unbound: the first
        // occurrence of X sits inside the skipped subtree, so the second
        // occurrence must *set* the slot, not compare against it. This is
        // why Slot is a dynamic set-or-compare op.
        let mut store = Store::new();
        let v = store.new_var();
        assert_same_as_interpreter(
            "f(g(X), X) :- h(X).",
            "f",
            &[Term::Var(v), Term::int(5)],
            &store,
        );
    }

    #[test]
    fn port_goal_fails_constructor_ops() {
        let store = Store::new();
        let r = lower_first_rule("f([H|T]) :- g(H, T).", "f", 1);
        let (res, _) = attempt(&r, &[Term::Port(1)], &store);
        assert_eq!(res, TryResult::Fail);
    }

    // -- guards -----------------------------------------------------------

    #[test]
    fn guard_comparisons_and_suspension() {
        let mut store = Store::new();
        let r = lower_first_rule("f(N) :- N > 0 | g(N).", "f", 1);
        assert_eq!(attempt(&r, &[Term::int(3)], &store).0, TryResult::Commit);
        assert_eq!(attempt(&r, &[Term::int(-1)], &store).0, TryResult::Fail);
        let v = store.new_var();
        let (res, pend) = attempt(&r, &[Term::Var(v)], &store);
        assert_eq!(res, TryResult::Suspend);
        assert_eq!(pend, vec![v]);
    }

    #[test]
    fn ground_guard_operands_prefold() {
        let store = Store::new();
        let r = lower_first_rule("f(N) :- N < 1 + 2 | g.", "f", 1);
        assert_eq!(attempt(&r, &[Term::int(2)], &store).0, TryResult::Commit);
        assert_eq!(attempt(&r, &[Term::int(3)], &store).0, TryResult::Fail);
    }

    #[test]
    fn unknown_guard_name_errors_only_when_reached() {
        let store = Store::new();
        // Lowering must not reject the program: the interpreter surfaces
        // BadBuiltin only when the rule's guards actually run.
        let r = lower_first_rule("f(a) :- frobnicate(1) | g.", "f", 1);
        let mut scratch = Scratch::default();
        assert!(try_rule(&r, &[Term::atom("b")], &store, &mut scratch).is_ok());
        assert!(try_rule(&r, &[Term::atom("a")], &store, &mut scratch).is_err());
    }

    #[test]
    fn type_tests_suspend_on_unbound() {
        let mut store = Store::new();
        let r = lower_first_rule("f(X) :- integer(X) | g.", "f", 1);
        assert_eq!(attempt(&r, &[Term::int(1)], &store).0, TryResult::Commit);
        assert_eq!(attempt(&r, &[Term::atom("a")], &store).0, TryResult::Fail);
        let v = store.new_var();
        assert_eq!(attempt(&r, &[Term::Var(v)], &store).0, TryResult::Suspend);
    }

    // -- body templates ---------------------------------------------------

    #[test]
    fn ground_body_subtrees_are_prebuilt() {
        let p = compile_program(&parse_program("f(X) :- g(X, h(1, [a, b])).").unwrap()).unwrap();
        let r = lower_rule(&p.get("f", 1).unwrap().rules[0]);
        let Tmpl::Tuple(_, args) = &r.body[0].goal else {
            panic!("expected tuple template");
        };
        assert!(matches!(&args[0], Tmpl::Slot(_)));
        assert!(matches!(&args[1], Tmpl::Const(_)));
    }

    #[test]
    fn tmpl_build_matches_pat_instantiate_var_order() {
        let p =
            compile_program(&parse_program("f(A) :- g(A, X, h(Y, 1), _, X).").unwrap()).unwrap();
        let rule = &p.get("f", 1).unwrap().rules[0];
        let exec = lower_rule(rule);

        let mut store1 = Store::new();
        let mut frame1 = Frame::with_locals(rule.n_locals);
        frame1.set(0, Term::int(9));
        let want = rule.body[0].goal.instantiate(&mut frame1, &mut store1);

        let mut store2 = Store::new();
        let mut frame2 = Frame::with_locals(rule.n_locals);
        frame2.set(0, Term::int(9));
        let got = exec.body[0].goal.build(&mut frame2, &mut store2);

        assert_eq!(want, got);
        assert_eq!(store1.len(), store2.len());
        let _ = NodeId(0);
    }
}
