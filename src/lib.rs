//! Facade crate for the algorithmic-motifs workspace. See README.md.
pub use motifs;
pub use seqalign;
pub use skeletons;
pub use strand_core;
pub use strand_machine;
pub use strand_parallel;
pub use strand_parse;
pub use strand_serve;
pub use transform;
