//! Quickstart: evaluate the paper's §3.1 arithmetic tree with the composed
//! `Tree-Reduce-1 = Server ∘ Rand ∘ Tree1` motif.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use algorithmic_motifs::motifs::{tree_reduce_1, ARITH_EVAL};
use algorithmic_motifs::strand_machine::{run_parsed_goal, MachineConfig};

fn main() {
    // 1. The user supplies only the node evaluation function (§3.4: "the
    //    user would not need to be aware of the implementation details …
    //    he would only need to provide the four-line program").
    let user_program = ARITH_EVAL;

    // 2. Apply the composed motif: T(A) ∪ L.
    let motif = tree_reduce_1();
    let program = motif
        .apply_src(user_program)
        .expect("motif applies to the eval program");
    println!("Applied motif: {}", motif.name());
    println!(
        "User program: 5 rules; generated parallel program: {} rules\n",
        program.rule_count()
    );

    // 3. Run on a simulated 4-processor multicomputer. The tree is the
    //    paper's example: (3*2)*((2+1)+1) = 24.
    let tree = "tree('*', tree('*', leaf(3), leaf(2)), \
                tree('+', tree('+', leaf(2), leaf(1)), leaf(1)))";
    let result = run_parsed_goal(
        &program,
        &format!("create(4, reduce({tree}, Value))"),
        MachineConfig::with_nodes(4).seed(1),
    )
    .expect("the program runs");

    println!("Value = {}", result.bindings["Value"]);
    let m = &result.report.metrics;
    println!(
        "reductions per node: {:?}\ncross-node messages: {}\nvirtual makespan: {} ticks",
        m.reductions,
        m.total_messages(),
        m.makespan
    );
    assert_eq!(result.bindings["Value"].to_string(), "24");
}
