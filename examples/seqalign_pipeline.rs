//! The paper's application end to end (§3): generate a family of related
//! RNA sequences, build the phylogenetic guide tree, and produce the
//! multiple alignment by tree reduction — sequentially and under both of
//! the paper's tree-reduction strategies.
//!
//! ```sh
//! cargo run --example seqalign_pipeline
//! ```

use algorithmic_motifs::seqalign::{
    align_family_parallel, align_family_seq, generate_family, guide_tree, FamilyParams, ScoreParams,
};
use algorithmic_motifs::skeletons::{Labeling, Pool};

fn main() {
    // 1. Generate 16 related RNA sequences (the 1990 lab data substitute).
    let fam = generate_family(&FamilyParams {
        leaves: 16,
        ancestral_len: 120,
        seed: 2026,
        ..Default::default()
    });
    println!(
        "family of {} sequences, lengths {:?}",
        fam.sequences.len(),
        fam.sequences.iter().map(Vec::len).collect::<Vec<_>>()
    );

    // 2. Build the guide tree ("philogenetic tree" in the paper's words).
    let params = ScoreParams::default();
    let guide = guide_tree(&fam.sequences, &params);
    println!(
        "guide tree leaves (clustered order): {:?}",
        guide.leaf_ids()
    );

    // 3. Reduce the tree with the align-node operator — sequentially …
    let reference = align_family_seq(&fam.sequences, &params);
    println!(
        "\nsequential alignment: {} columns, {:.1}% column identity",
        reference.len(),
        reference.column_identity() * 100.0
    );

    // … and in parallel under both tree-reduction strategies (§3.6: same
    // interface, different algorithms).
    for (name, labeling) in [
        ("Tree-Reduce-1 (random mapping)", Labeling::Random(7)),
        ("Tree-Reduce-2 (paper labeling)", Labeling::Paper(7)),
    ] {
        let pool = Pool::new(4, false);
        let out = align_family_parallel(&pool, &fam.sequences, &params, labeling);
        assert_eq!(out.value, reference, "parallel must match sequential");
        println!(
            "{name}: identical alignment; {} cross-worker value transfers, \
             peak live intermediates {:.1} KiB, evals per worker {:?}",
            out.cross_child_values,
            out.peak_live_bytes as f64 / 1024.0,
            out.evals_per_worker
        );
        pool.shutdown();
    }
}
