//! A tiny command-line runner for motif-language programs: point it at a
//! source file and a goal, and it executes the program on the simulated
//! multicomputer and prints the goal's bindings plus run metrics.
//!
//! ```sh
//! cargo run --example run_strand -- <file> <goal> [nodes] [seed] \
//!     [--trace] [--stats] [--backend sim|parallel] [--threads N] \
//!     [--exec compiled|interpreted] \
//!     [--chaos seed=N,kill=shard@reductions,drop=p,dup=p,slow=shard:us]
//! cargo run --example run_strand -- [app.str] [servers] --serve HOST:PORT \
//!     [--backend sim|parallel] [--threads N] [--stats]
//! # e.g.
//! echo 'double(X, Y) :- Y := X * 2.' > /tmp/d.str
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)'
//! # same program on real worker threads:
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)' 4 0 \
//!     --backend parallel --threads 4
//! # rule-level statistics from the reference interpreter:
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)' \
//!     --exec interpreted --stats
//! # keep a server/1 application resident and answer TCP clients
//! # (ctrl-c drains and prints the serve summary; see DESIGN.md §9):
//! echo 'server([]). server([halt|_]).
//!       server([req(Q, R)|In]) :- R := Q * 2, server(In).' > /tmp/s.str
//! cargo run --example run_strand -- /tmp/s.str --serve 127.0.0.1:7464 \
//!     --backend parallel --threads 2
//! ```
//!
//! With no arguments it runs a built-in demo (the paper's Figure 1).

use algorithmic_motifs::strand_machine::{
    render_trace, run_goal, trace_summary, ChaosPlan, ExecMode, MachineConfig, RunStatus,
};

const DEMO: &str = r#"
% The paper's Figure 1: a producer and consumer communicating by a
% synchronous stream of four messages.
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, sync) :- N > 0 |
    Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X|Xs]) :- X := sync, consumer(Xs).
consumer([]).
"#;

fn parse_chaos(spec: &str) -> ChaosPlan {
    ChaosPlan::parse_spec(spec).unwrap_or_else(|e| {
        eprintln!("--chaos: {e}");
        std::process::exit(2);
    })
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Set on SIGINT in `--serve` mode; installed over `signal(2)` directly so
/// the example needs no extra dependency (the handler is a lone atomic
/// store, which is async-signal-safe).
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// `--serve HOST:PORT`: keep the program resident (DESIGN.md §9) and
/// answer TCP clients until SIGINT, then drain and print the summary.
fn run_serve(addr: &str, app: &str, servers: u32, backend: &str, threads: u32, stats: bool) -> ! {
    use algorithmic_motifs::strand_serve::{serve, MotifService, ServeBackend, ServeConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let serve_backend = if backend == "parallel" {
        algorithmic_motifs::strand_parallel::install();
        ServeBackend::Parallel(threads)
    } else {
        ServeBackend::Sim
    };
    let cfg = ServeConfig {
        servers,
        backend: serve_backend,
        ..ServeConfig::default()
    };
    let service = match MotifService::start(app, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--serve: boot failed: {e}");
            std::process::exit(1);
        }
    };
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("--serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_sigint as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
    }
    eprintln!(
        "serving {servers} servers on {} worker thread(s) at {addr} (ctrl-c to stop)",
        service.threads()
    );
    let shutdown: Arc<AtomicBool> = Arc::new(AtomicBool::new(false));
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::Release);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    match serve(listener, service, shutdown, Duration::from_secs(10)) {
        Ok(summary) => {
            let m = &summary.report.metrics;
            println!(
                "\nsessions: {}/{} (opened/closed) | requests: {} admitted, {} rejected\n\
                 vars reclaimed: {} | idle parks: {} | reductions: {}",
                m.sessions_opened,
                m.sessions_closed,
                m.requests_admitted,
                m.requests_rejected,
                m.vars_reclaimed,
                m.idle_parks,
                m.total_reductions,
            );
            if stats {
                println!("{m:#?}");
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("--serve: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--trace");
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    let backend = take_flag_value(&mut args, "--backend").unwrap_or_else(|| "sim".to_string());
    let threads: u32 = take_flag_value(&mut args, "--threads")
        .map(|v| v.parse().expect("--threads wants a number"))
        .unwrap_or(0);
    let exec_arg = take_flag_value(&mut args, "--exec").unwrap_or_else(|| "compiled".to_string());
    let chaos = take_flag_value(&mut args, "--chaos").map(|spec| parse_chaos(&spec));
    let serve_addr = take_flag_value(&mut args, "--serve");
    if chaos.is_some() && backend != "parallel" {
        eprintln!("--chaos injects wall-clock faults; it requires --backend parallel");
        std::process::exit(2);
    }
    if !matches!(backend.as_str(), "sim" | "parallel") {
        eprintln!("--backend must be `sim` (deterministic) or `parallel`, got `{backend}`");
        std::process::exit(2);
    }
    if let Some(addr) = serve_addr {
        // Resident service mode: the positional args are [app-file]
        // [servers]; the app supplies server/1 rules, the goal comes from
        // the network. Chaos assumes a run that ends — the resident engine
        // rejects it, so refuse it coherently here too.
        if chaos.is_some() {
            eprintln!("--chaos assumes a run that terminates; it cannot combine with --serve");
            std::process::exit(2);
        }
        let (app, label) = match args.first() {
            Some(file) => (
                std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}")),
                file.clone(),
            ),
            None => (
                algorithmic_motifs::strand_serve::DOUBLER_APP.to_string(),
                "<built-in doubler>".to_string(),
            ),
        };
        let servers: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
        println!("program: {label}\nserve:   {addr}\nservers: {servers}\nbackend: {backend}\n");
        run_serve(&addr, &app, servers, &backend, threads, stats);
    }
    let exec = match exec_arg.as_str() {
        "compiled" => ExecMode::Compiled,
        "interpreted" => ExecMode::Interpreted,
        other => {
            eprintln!(
                "--exec must be `compiled` (fast path) or `interpreted` (reference), got `{other}`"
            );
            std::process::exit(2);
        }
    };
    let (source, goal, label) = match args.as_slice() {
        [] => (
            DEMO.to_string(),
            "go(4)".to_string(),
            "<built-in demo>".to_string(),
        ),
        [file, goal, ..] => {
            let src =
                std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
            (src, goal.clone(), file.clone())
        }
        _ => {
            eprintln!(
                "usage: run_strand <file> <goal> [nodes] [seed] \
                 [--trace] [--stats] [--backend sim|parallel] [--threads N] \
                 [--exec compiled|interpreted] \
                 [--chaos seed=N,kill=shard@reductions,drop=p,dup=p,slow=shard:us]\n\
                 \x20      run_strand [app.str] [servers] --serve HOST:PORT \
                 [--backend sim|parallel] [--threads N] [--stats]"
            );
            std::process::exit(2);
        }
    };
    let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("program: {label}\ngoal:    {goal}\nnodes:   {nodes}\nbackend: {backend}\nexec:    {exec_arg}\n");
    if let Ok(parsed) = algorithmic_motifs::strand_parse::parse_program(&source) {
        let findings = algorithmic_motifs::strand_parse::lint(&parsed, &[]);
        for l in &findings {
            eprintln!("lint: {l}");
        }
        if !findings.is_empty() {
            eprintln!();
        }
    }
    let mut config = MachineConfig::with_nodes(nodes).seed(seed).exec(exec);
    config.record_trace = trace;
    if backend == "parallel" {
        algorithmic_motifs::strand_parallel::install();
        config = config.parallel(threads);
    }
    if let Some(plan) = chaos {
        // Faults make failure normal: keep partial results reportable.
        config = config.chaos(plan);
        config.fail_fast = false;
    }
    let result = run_goal(&source, &goal, config);
    match result {
        Ok(r) => {
            if trace {
                println!(
                    "--- trace ---\n{}--- {} ---\n",
                    render_trace(&r.report.trace),
                    trace_summary(&r.report.trace)
                );
            }
            for (name, value) in &r.bindings {
                println!("{name} = {value}");
            }
            if !r.report.output.is_empty() {
                println!("\noutput:");
                for line in &r.report.output {
                    println!("  {line}");
                }
            }
            let m = &r.report.metrics;
            println!(
                "\nstatus: {:?}\nreductions: {} | suspensions: {} | cross-node messages: {} | makespan: {} ticks",
                r.report.status,
                m.total_reductions,
                m.suspensions,
                m.total_messages(),
                m.makespan
            );
            if m.threads_used > 0 {
                println!(
                    "threads: {} | wall: {:.2} ms | jobs/worker: {:?}",
                    m.threads_used,
                    m.wall_ns as f64 / 1e6,
                    m.worker_jobs
                );
            }
            if stats {
                println!("\n--- rule stats ---");
                println!(
                    "rule dispatches: {} compiled, {} interpreted",
                    m.compiled_reductions, m.interpreted_reductions
                );
                println!("rules tried (full head match): {}", m.rules_tried);
                let probes = m.index_hits + m.index_misses;
                if probes > 0 {
                    println!(
                        "first-arg index: {} skipped, {} passed through ({:.1}% filtered)",
                        m.index_hits,
                        m.index_misses,
                        100.0 * m.index_hits as f64 / probes as f64
                    );
                } else {
                    println!("first-arg index: no keyed rules probed");
                }
                if m.shards_killed > 0
                    || m.batches_dropped > 0
                    || m.batches_duplicated > 0
                    || m.throttle_ns > 0
                    || m.supervisor_restarts > 0
                {
                    println!("chaos:");
                    println!("  shards killed: {}", m.shards_killed);
                    println!(
                        "  batches dropped: {} ({} spawns) | duplicated: {} ({} spawns)",
                        m.batches_dropped, m.msgs_dropped, m.batches_duplicated, m.msgs_duplicated
                    );
                    println!(
                        "  throttle stalls: {:.2} ms | supervisor restarts: {}",
                        m.throttle_ns as f64 / 1e6,
                        m.supervisor_restarts
                    );
                }
                if !m.susp_by_proc.is_empty() {
                    let mut by_proc: Vec<(&str, u64)> = m
                        .susp_by_proc
                        .iter()
                        .map(|(name, n)| (name.as_str(), *n))
                        .collect();
                    by_proc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    println!("suspensions by procedure:");
                    for (name, n) in by_proc {
                        println!("  {name}: {n}");
                    }
                }
            }
            if let RunStatus::Quiescent { suspended } = r.report.status {
                println!("note: {suspended} process(es) idle awaiting input (normal for server networks)");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
