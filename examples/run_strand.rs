//! A tiny command-line runner for motif-language programs: point it at a
//! source file and a goal, and it executes the program on the simulated
//! multicomputer and prints the goal's bindings plus run metrics.
//!
//! ```sh
//! cargo run --example run_strand -- <file> <goal> [nodes] [seed] \
//!     [--trace] [--stats] [--backend sim|parallel] [--threads N] \
//!     [--exec compiled|interpreted] \
//!     [--chaos seed=N,kill=shard@reductions,drop=p,dup=p,slow=shard:us]
//! # e.g.
//! echo 'double(X, Y) :- Y := X * 2.' > /tmp/d.str
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)'
//! # same program on real worker threads:
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)' 4 0 \
//!     --backend parallel --threads 4
//! # rule-level statistics from the reference interpreter:
//! cargo run --example run_strand -- /tmp/d.str 'double(21, V)' \
//!     --exec interpreted --stats
//! ```
//!
//! With no arguments it runs a built-in demo (the paper's Figure 1).

use algorithmic_motifs::strand_machine::{
    render_trace, run_goal, trace_summary, ChaosPlan, ExecMode, MachineConfig, RunStatus,
};

const DEMO: &str = r#"
% The paper's Figure 1: a producer and consumer communicating by a
% synchronous stream of four messages.
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, sync) :- N > 0 |
    Xs := [X|Xs1], N1 := N - 1, producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X|Xs]) :- X := sync, consumer(Xs).
consumer([]).
"#;

fn parse_chaos(spec: &str) -> ChaosPlan {
    ChaosPlan::parse_spec(spec).unwrap_or_else(|e| {
        eprintln!("--chaos: {e}");
        std::process::exit(2);
    })
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--trace");
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    let backend = take_flag_value(&mut args, "--backend").unwrap_or_else(|| "sim".to_string());
    let threads: u32 = take_flag_value(&mut args, "--threads")
        .map(|v| v.parse().expect("--threads wants a number"))
        .unwrap_or(0);
    let exec_arg = take_flag_value(&mut args, "--exec").unwrap_or_else(|| "compiled".to_string());
    let chaos = take_flag_value(&mut args, "--chaos").map(|spec| parse_chaos(&spec));
    if chaos.is_some() && backend != "parallel" {
        eprintln!("--chaos injects wall-clock faults; it requires --backend parallel");
        std::process::exit(2);
    }
    if !matches!(backend.as_str(), "sim" | "parallel") {
        eprintln!("--backend must be `sim` (deterministic) or `parallel`, got `{backend}`");
        std::process::exit(2);
    }
    let exec = match exec_arg.as_str() {
        "compiled" => ExecMode::Compiled,
        "interpreted" => ExecMode::Interpreted,
        other => {
            eprintln!(
                "--exec must be `compiled` (fast path) or `interpreted` (reference), got `{other}`"
            );
            std::process::exit(2);
        }
    };
    let (source, goal, label) = match args.as_slice() {
        [] => (
            DEMO.to_string(),
            "go(4)".to_string(),
            "<built-in demo>".to_string(),
        ),
        [file, goal, ..] => {
            let src =
                std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
            (src, goal.clone(), file.clone())
        }
        _ => {
            eprintln!(
                "usage: run_strand <file> <goal> [nodes] [seed] \
                 [--trace] [--stats] [--backend sim|parallel] [--threads N] \
                 [--exec compiled|interpreted] \
                 [--chaos seed=N,kill=shard@reductions,drop=p,dup=p,slow=shard:us]"
            );
            std::process::exit(2);
        }
    };
    let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);

    println!("program: {label}\ngoal:    {goal}\nnodes:   {nodes}\nbackend: {backend}\nexec:    {exec_arg}\n");
    if let Ok(parsed) = algorithmic_motifs::strand_parse::parse_program(&source) {
        let findings = algorithmic_motifs::strand_parse::lint(&parsed, &[]);
        for l in &findings {
            eprintln!("lint: {l}");
        }
        if !findings.is_empty() {
            eprintln!();
        }
    }
    let mut config = MachineConfig::with_nodes(nodes).seed(seed).exec(exec);
    config.record_trace = trace;
    if backend == "parallel" {
        algorithmic_motifs::strand_parallel::install();
        config = config.parallel(threads);
    }
    if let Some(plan) = chaos {
        // Faults make failure normal: keep partial results reportable.
        config = config.chaos(plan);
        config.fail_fast = false;
    }
    let result = run_goal(&source, &goal, config);
    match result {
        Ok(r) => {
            if trace {
                println!(
                    "--- trace ---\n{}--- {} ---\n",
                    render_trace(&r.report.trace),
                    trace_summary(&r.report.trace)
                );
            }
            for (name, value) in &r.bindings {
                println!("{name} = {value}");
            }
            if !r.report.output.is_empty() {
                println!("\noutput:");
                for line in &r.report.output {
                    println!("  {line}");
                }
            }
            let m = &r.report.metrics;
            println!(
                "\nstatus: {:?}\nreductions: {} | suspensions: {} | cross-node messages: {} | makespan: {} ticks",
                r.report.status,
                m.total_reductions,
                m.suspensions,
                m.total_messages(),
                m.makespan
            );
            if m.threads_used > 0 {
                println!(
                    "threads: {} | wall: {:.2} ms | jobs/worker: {:?}",
                    m.threads_used,
                    m.wall_ns as f64 / 1e6,
                    m.worker_jobs
                );
            }
            if stats {
                println!("\n--- rule stats ---");
                println!(
                    "rule dispatches: {} compiled, {} interpreted",
                    m.compiled_reductions, m.interpreted_reductions
                );
                println!("rules tried (full head match): {}", m.rules_tried);
                let probes = m.index_hits + m.index_misses;
                if probes > 0 {
                    println!(
                        "first-arg index: {} skipped, {} passed through ({:.1}% filtered)",
                        m.index_hits,
                        m.index_misses,
                        100.0 * m.index_hits as f64 / probes as f64
                    );
                } else {
                    println!("first-arg index: no keyed rules probed");
                }
                if m.shards_killed > 0
                    || m.batches_dropped > 0
                    || m.batches_duplicated > 0
                    || m.throttle_ns > 0
                    || m.supervisor_restarts > 0
                {
                    println!("chaos:");
                    println!("  shards killed: {}", m.shards_killed);
                    println!(
                        "  batches dropped: {} ({} spawns) | duplicated: {} ({} spawns)",
                        m.batches_dropped, m.msgs_dropped, m.batches_duplicated, m.msgs_duplicated
                    );
                    println!(
                        "  throttle stalls: {:.2} ms | supervisor restarts: {}",
                        m.throttle_ns as f64 / 1e6,
                        m.supervisor_restarts
                    );
                }
                if !m.susp_by_proc.is_empty() {
                    let mut by_proc: Vec<(&str, u64)> = m
                        .susp_by_proc
                        .iter()
                        .map(|(name, n)| (name.as_str(), *n))
                        .collect();
                    by_proc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    println!("suspensions by procedure:");
                    for (name, n) in by_proc {
                        println!("  {name}: {n}");
                    }
                }
            }
            if let RunStatus::Quiescent { suspended } = r.report.status {
                println!("note: {suspended} process(es) idle awaiting input (normal for server networks)");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
