//! The Grid motif (§4 "grid problems"): a 1-D relaxation where each cell is
//! a concurrent process exchanging boundary values with its neighbors over
//! single-assignment streams — and the same computation as a typed
//! skeleton on real threads.
//!
//! ```sh
//! cargo run --example grid_jacobi
//! ```

use algorithmic_motifs::motifs::grid::{grid, sequential_stencil};
use algorithmic_motifs::skeletons::pool::Pool;
use algorithmic_motifs::skeletons::stencil::stencil_1d;
use algorithmic_motifs::strand_core::Term;
use algorithmic_motifs::strand_machine::{run_parsed_goal, MachineConfig};

fn main() {
    let (n, steps) = (12u32, 8u32);

    // Source-level: the motif language version on the simulator.
    let program = grid()
        .apply_src("cell_init(I, V) :- V := I * 1.0.")
        .expect("grid motif applies");
    let r = run_parsed_goal(
        &program,
        &format!("grid({n}, {steps}, Final)"),
        MachineConfig::with_nodes(4),
    )
    .expect("grid runs");
    let motif_values: Vec<f64> = r.bindings["Final"]
        .as_proper_list()
        .expect("list of finals")
        .iter()
        .map(|t| match t {
            Term::Float(x) => *x,
            Term::Int(i) => *i as f64,
            other => panic!("unexpected {other}"),
        })
        .collect();
    println!("motif grid ({n} cells, {steps} steps) on 4 virtual nodes:");
    println!("  {motif_values:.2?}");
    println!(
        "  {} reductions, {} cross-node messages",
        r.report.metrics.total_reductions,
        r.report.metrics.total_messages()
    );

    // Typed skeleton on real threads.
    let init: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let pool = Pool::new(4, true);
    let skeleton_values = stencil_1d(&pool, init.clone(), steps);
    pool.shutdown();
    println!("skeleton stencil (4 worker threads):\n  {skeleton_values:.2?}");

    // Both must match the sequential reference exactly.
    let reference = sequential_stencil(&init, steps);
    for (a, b) in motif_values.iter().zip(reference.iter()) {
        assert!((a - b).abs() < 1e-9);
    }
    for (a, b) in skeleton_values.iter().zip(reference.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
    println!("both implementations match the sequential reference");
}
