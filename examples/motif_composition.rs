//! Print the three program stages of `Tree-Reduce-1 = Server ∘ Rand ∘
//! Tree1` — the reproduction of the paper's Figures 5 and 6.
//!
//! ```sh
//! cargo run --example motif_composition
//! ```

use algorithmic_motifs::motifs::{rand_map, server, tree1, ARITH_EVAL};
use algorithmic_motifs::strand_parse::{parse_program, pretty};

fn main() {
    let app = parse_program(ARITH_EVAL).expect("user eval parses");
    println!(
        "%%% The application program: eval/4 only %%%\n{}",
        pretty(&app)
    );

    // Stage 1: Tree1 (identity transformation + 5-line library).
    let stage1 = tree1().apply(&app).expect("Tree1");
    println!(
        "%%% Output of Tree-Reduce-1's first stage (Tree1) %%%\n{}",
        pretty(&stage1)
    );

    // Stage 2: Rand (expand @random, synthesize server/1).
    let stage2 = rand_map().apply(&stage1).expect("Rand");
    println!("%%% Output of Rand %%%\n{}", pretty(&stage2));

    // Stage 3: Server (thread DT, translate send/nodes/halt, link library).
    let stage3 = server().apply(&stage2).expect("Server");
    println!(
        "%%% Output of Server (executable parallel program) %%%\n{}",
        pretty(&stage3)
    );

    // The equations of §2.2 hold: applying the composed motif in one step
    // produces the same program.
    let composed = server().compose(&rand_map()).compose(&tree1());
    let direct = composed.apply(&app).expect("composed motif applies");
    assert_eq!(
        pretty(&direct),
        pretty(&stage3),
        "M2(M1(A)) must equal (M2 o M1)(A)"
    );
    println!("% Verified: (Server o Rand o Tree1)(A) == Server(Rand(Tree1(A)))");
}
