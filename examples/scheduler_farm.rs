//! The Scheduler motif ([6], §1) and its reuse-by-modification story: a
//! manager/worker task farm, then the same farm with an extra hierarchy
//! level for a "highly parallel computer".
//!
//! ```sh
//! cargo run --example scheduler_farm
//! ```

use algorithmic_motifs::motifs::scheduler::{
    scheduler, scheduler_hierarchical, tasks_src, BURN_TASK,
};
use algorithmic_motifs::strand_machine::{run_parsed_goal, MachineConfig};

fn main() {
    // 120 tasks with skewed costs (the dynamic-balancing case the paper's
    // schedulers exist for).
    let costs: Vec<u64> = (0..120)
        .map(|i| if i % 17 == 0 { 400 } else { 20 })
        .collect();
    let total: u64 = costs.iter().sum();
    println!("120 tasks, total work {total} ticks\n");

    // Single-level farm on 9 simulated processors.
    let p = scheduler().apply_src(BURN_TASK).expect("scheduler applies");
    let r = run_parsed_goal(
        &p,
        &format!("create(9, start({}, Results))", tasks_src(&costs)),
        MachineConfig::with_nodes(9).seed(4),
    )
    .expect("farm runs");
    let m = &r.report.metrics;
    println!(
        "1-level farm: makespan {} (ideal {}), manager busy {}, results {}",
        m.makespan,
        total / 9,
        m.busy[0],
        r.bindings["Results"].as_proper_list().unwrap().len()
    );

    // Two-level farm: 2 groups of 4 workers ("introducing additional
    // levels in its manager/worker hierarchy", §1).
    let p2 = scheduler_hierarchical()
        .apply_src(BURN_TASK)
        .expect("scheduler2 applies");
    let r2 = run_parsed_goal(
        &p2,
        &format!("create(9, start2({}, Results, 2))", tasks_src(&costs)),
        MachineConfig::with_nodes(9).seed(4),
    )
    .expect("hierarchical farm runs");
    let m2 = &r2.report.metrics;
    println!(
        "2-level farm: makespan {}, top manager busy {} (vs {} single-level)",
        m2.makespan, m2.busy[0], m.busy[0]
    );
    assert_eq!(
        r2.bindings["Results"].as_proper_list().unwrap().len(),
        costs.len()
    );

    // The §2.2 pragma interface: no task lists, no scheduler calls — just
    // mark the calls with @task and apply the Sched motif.
    let app = r#"
        crunch(0, V) :- V := 0.
        crunch(N, V) :- N > 0 |
            cost(N, C),
            burn(C, V1)@task,
            N1 := N - 1,
            crunch(N1, V2),
            add(V1, V2, V).
        cost(N, C) :- M := N mod 5, C := 20 + M * 80.
        burn(C, V) :- work(C), V := 1.
        add(V1, V2, V) :- V := V1 + V2.
    "#;
    use algorithmic_motifs::motifs::{boot_goal, task_scheduler_with_entries};
    let p3 = task_scheduler_with_entries(&[("crunch", 2)])
        .apply_src(app)
        .expect("Sched motif applies");
    let r3 = run_parsed_goal(
        &p3,
        &boot_goal(9, "crunch", &["60", "V"]),
        MachineConfig::with_nodes(9).seed(4),
    )
    .expect("@task program runs");
    println!(
        "
@task pragma (Sched motif): 60 tasks, V = {}, makespan {}, status {:?}",
        r3.bindings["V"], r3.report.metrics.makespan, r3.report.status
    );
}
