//! Fault tolerance by composition: `Supervise ∘ Server ∘ Rand` applied to
//! an unmodified token-ring application.
//!
//! The application knows nothing about failure. The Rand stage expands any
//! `@random` into a `send/2`; the Server stage turns every `send/2` into a
//! `distribute/3` over the server network; the Supervise stage rewrites
//! every `distribute` into `rsend` — sequence-numbered, acked delivery with
//! exponential-backoff retry — and links a library of heartbeat monitors
//! that restart a dead server's loop on the next node from its message log.
//!
//! ```sh
//! cargo run --example supervised_ring
//! # the same ring on real worker threads under wall-clock fault injection
//! # (kill one of two shards a few hundred reductions in, drop 10% of
//! # cross-worker batches, duplicate 5%):
//! cargo run --example supervised_ring -- \
//!     --chaos seed=61,kill=1@500,drop=0.10,dup=0.05 --threads 2
//! ```

use algorithmic_motifs::motifs::{random, supervised_random};
use algorithmic_motifs::strand_machine::{
    run_parsed_goal, ChaosPlan, FaultPlan, MachineConfig, RunStatus,
};
use algorithmic_motifs::strand_parse::pretty;

/// A token ring: each server prints its number and forwards the token;
/// the last server halts the network. No failure handling anywhere.
/// (This app defines its own `server/1`, so the Rand stage — which
/// synthesizes `server/1` for `@random` apps — passes it through; the
/// composed motif accepts either style.)
const RING: &str = r#"
    server([token(K)|In]) :- pass(K), server(In).
    server([halt|_]).
    pass(K) :- work(40), print(K), nodes(N), next(K, N).
    next(K, N) :- K < N | K1 := K + 1, send(K1, token(K1)).
    next(N, N) :- halt.
"#;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        let v = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
        Some(v)
    };
    let chaos = take(&mut args, "--chaos").map(|spec| {
        ChaosPlan::parse_spec(&spec).unwrap_or_else(|e| {
            eprintln!("--chaos: {e}");
            std::process::exit(2);
        })
    });
    let threads: u32 = take(&mut args, "--threads")
        .map(|v| v.parse().expect("--threads wants a number"))
        .unwrap_or(2);

    let plain = random().apply_src(RING).expect("Server o Rand applies");
    let sup = supervised_random()
        .apply_src(RING)
        .expect("Supervise o Server o Rand applies");

    // With a chaos spec the demo moves to the real multi-threaded backend:
    // the same supervised program, but the faults are wall-clock — a worker
    // shard dies mid-run and the outbox drops/duplicates spawn batches.
    if let Some(plan) = chaos {
        algorithmic_motifs::strand_parallel::install();
        let goal = "create(8, token(1))";
        let mut cfg = MachineConfig::with_nodes(8)
            .seed(47)
            .parallel(threads)
            .chaos(plan);
        cfg.fail_fast = false;
        cfg.max_reductions = 2_000_000;
        let r = run_parsed_goal(&sup, goal, cfg).expect("supervised ring runs under chaos");
        let m = &r.report.metrics;
        println!("%% Supervise o Server o Rand under wall-clock chaos ({threads} threads):");
        println!("%%   status  {:?}", r.report.status);
        println!("%%   output  {:?}", r.report.output);
        println!(
            "%%   chaos   {} shard(s) killed, {} batches dropped, {} duplicated, {} restart(s)",
            m.shards_killed, m.batches_dropped, m.batches_duplicated, m.supervisor_restarts
        );
        for k in 1..=8 {
            assert!(
                r.report.output.contains(&k.to_string()),
                "token must reach server {k}"
            );
        }
        println!("\n% Verified: every server was visited despite the injected faults.");
        return;
    }

    // The application's token send is now a reliable rsend. (The library
    // itself still uses the low-level distribute internally — motif
    // libraries are linked last, untransformed, exactly so their own
    // plumbing escapes the rewrite.)
    let s = pretty(&sup);
    assert!(
        s.contains("rsend(K1, DT, token(K1))"),
        "the app's send must be rewritten: {s}"
    );
    println!("%% Supervised program: every send is an acked rsend; excerpt:");
    for line in s.lines().filter(|l| l.contains("rsend(")).take(3) {
        println!("%%   {}", line.trim());
    }

    // One seeded fault plan for both runs: node 3 dies at t=60, and every
    // edge drops 5% of its messages.
    let plan = || FaultPlan::default().crash(3, 60).drop_prob(0.05).seed(7);
    let goal = "create(6, token(1))";

    let r = run_parsed_goal(&plain, goal, MachineConfig::with_nodes(6).faults(plan()))
        .expect("plain ring runs");
    println!("\n%% Server o Rand under the fault plan:");
    println!("%%   status  {:?}", r.report.status);
    println!("%%   output  {:?}", r.report.output);
    assert!(
        matches!(r.report.status, RunStatus::Partitioned { .. }),
        "the unsupervised ring must strand on the dead node"
    );

    let r = run_parsed_goal(&sup, goal, MachineConfig::with_nodes(6).faults(plan()))
        .expect("supervised ring runs");
    println!("\n%% Supervise o Server o Rand under the same plan:");
    println!("%%   status  {:?}", r.report.status);
    println!("%%   output  {:?}", r.report.output);
    println!(
        "%%   faults  {} crash(es), {} dropped, {} duplicated",
        r.report.metrics.nodes_crashed,
        r.report.metrics.msgs_dropped,
        r.report.metrics.msgs_duplicated,
    );
    assert_eq!(r.report.status, RunStatus::Completed);
    for k in 1..=6 {
        assert!(
            r.report.output.contains(&k.to_string()),
            "token must reach server {k}"
        );
    }
    println!("\n% Verified: the same application completes once Supervise is composed in.");
}
